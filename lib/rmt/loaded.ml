type t = {
  prog : Program.t;
  uid : int;
  maps : Map_store.t array;
  models : Model_store.handle array;
  store : Model_store.t;
  helpers : Helper.t;
  prog_table : t option array;
  privacy : Privacy.account option;
  guardrail : Guardrail.t option;
  rng : Kml.Rng.t;
  consts : int array array;
  vmem : int array;
  env : Helper.env;
  call_args : int array array;
  ml_args : int array array;
  matmul_src : int array;
  proofs : Absint.Proof.t array;
  facts : Absint.fact option array;
      (* per-pc interval facts for proof-specialized codegen; length 0 when
         the program was linked without them (guard elision only) *)
  mutable runs : int;
  mutable total_steps : int;
}

let next_uid = ref 0

let link ?(rng = Kml.Rng.create 0x5eed) ?proofs ?facts ~store ~helpers ~maps ~models
    (prog : Program.t) =
  if Array.length maps <> Array.length prog.map_specs then
    invalid_arg "Loaded.link: map slot count mismatch";
  if Array.length models <> Array.length prog.model_arity then
    invalid_arg "Loaded.link: model slot count mismatch";
  Array.iteri
    (fun slot handle ->
      let arity = Model_store.n_features (Model_store.model store handle) in
      if arity <> prog.model_arity.(slot) then
        invalid_arg "Loaded.link: bound model feature arity mismatch")
    models;
  let privacy =
    match Program.privacy_budget prog with
    | Some epsilon_milli -> Some (Privacy.create ~epsilon_milli)
    | None -> None
  in
  let guardrail =
    match Program.guarded prog with
    | Some (lo, hi) -> Some (Guardrail.create ~lo ~hi)
    | None -> None
  in
  let uid = !next_uid in
  incr next_uid;
  let max_cols =
    Array.fold_left (fun acc (c : Program.const) -> Stdlib.max acc c.cols) 0 prog.consts
  in
  let proofs =
    match proofs with
    | Some p ->
      if Array.length p <> Array.length prog.code then
        invalid_arg "Loaded.link: proof array length mismatch";
      p
    | None -> Array.make (Array.length prog.code) Absint.Proof.none
  in
  let facts =
    match facts with
    | Some f ->
      if Array.length f <> Array.length prog.code then
        invalid_arg "Loaded.link: fact array length mismatch";
      f
    | None -> [||]
  in
  { prog;
    uid;
    maps;
    models;
    store;
    helpers;
    prog_table = Array.make (Stdlib.max 1 prog.n_prog_slots) None;
    privacy;
    guardrail;
    rng;
    consts = Array.map (fun (c : Program.const) -> c.data) prog.consts;
    vmem = Array.make (Stdlib.max 1 prog.vmem_size) 0;
    env =
      { Helper.ctxt = Ctxt.create ();
        now = (fun () -> 0);
        random = (fun () -> Kml.Rng.next rng) };
    call_args = Array.init 6 (fun arity -> Array.make arity 0);
    ml_args = Array.map (fun arity -> Array.make arity 0) prog.model_arity;
    matmul_src = Array.make max_cols 0;
    proofs;
    facts;
    runs = 0;
    total_steps = 0 }

let bind_tail_call t ~slot target =
  if slot < 0 || slot >= t.prog.Program.n_prog_slots then
    invalid_arg "Loaded.bind_tail_call: slot out of range";
  t.prog_table.(slot) <- Some target

let name t = t.prog.Program.name
let uid t = t.uid
