(** A loaded (linked) RMT program instance.

    Loading binds a verified {!Program.t} to concrete kernel objects: map
    slots to {!Map_store} instances, model slots to {!Model_store} handles,
    tail-call slots to other loaded programs, and materializes the
    program's declared capabilities (privacy account, guardrail, rate
    limiter).  {!Control.install} is the only intended producer; the
    constructor here is exposed for tests. *)

type t = {
  prog : Program.t;
  uid : int;                         (** unique per linked instance *)
  maps : Map_store.t array;
  models : Model_store.handle array;
  store : Model_store.t;
  helpers : Helper.t;
  prog_table : t option array;      (** tail-call targets, patchable *)
  privacy : Privacy.account option;
  guardrail : Guardrail.t option;
  rng : Kml.Rng.t;                   (** noise source for DP helpers *)
  consts : int array array;          (** raw Q16.16 constant data *)
  vmem : int array;                  (** scratchpad, zeroed per invocation *)
  env : Helper.env;                  (** reusable helper env; engines set ctxt/now per run *)
  call_args : int array array;       (** helper-argument scratch, indexed by arity 0..5 *)
  ml_args : int array array;         (** feature scratch, one per model slot *)
  matmul_src : int array;            (** [Mat_mul] src-snapshot scratch (max const cols) *)
  proofs : Absint.Proof.t array;     (** per-pc verifier proofs; engines elide proven guards *)
  facts : Absint.fact option array;  (** per-pc interval facts for JIT specialization; [[||]] = none *)
  mutable runs : int;
  mutable total_steps : int;
}

(** The scratch buffers ([env], [call_args], [ml_args], [matmul_src]) make
    steady-state execution allocation-free.  They are only valid for the
    duration of one instruction: helpers and [Fn] models must not retain
    the argument array they are passed. *)

val link :
  ?rng:Kml.Rng.t ->
  ?proofs:Absint.Proof.t array ->
  ?facts:Absint.fact option array ->
  store:Model_store.t ->
  helpers:Helper.t ->
  maps:Map_store.t array ->
  models:Model_store.handle array ->
  Program.t ->
  t
(** Builds the instance, creating fresh maps' bindings as given.  Checks
    that map and model slot counts match the program's declarations and
    that each bound model's feature arity matches; raises
    [Invalid_argument] otherwise.  Tail-call slots start unbound.

    [proofs] is the verifier report's per-pc proof array
    ({!Verifier.report}); when present (length must equal the code
    length), the engines skip runtime guards the analysis discharged.
    Default: no proofs — every guard stays on, which is always safe.

    [facts] is the report's per-pc interval-fact array; when present the
    JIT additionally constant-folds, strength-reduces and prunes dead
    branch arms against it ({!Specialize}).  Default: no facts — guard
    elision only. *)

val bind_tail_call : t -> slot:int -> t -> unit
val name : t -> string
val uid : t -> int
