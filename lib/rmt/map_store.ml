type kind = Array_map | Hash_map | Lru_hash_map | Ring_buffer
type spec = { kind : kind; capacity : int }

(* LRU bookkeeping: an intrusive doubly-linked list over live nodes, most
   recently used at the head.  All operations are O(1). *)
type lru_node = {
  key : int;
  mutable value : int;
  mutable prev : lru_node option;
  mutable next : lru_node option;
}

type lru_state = {
  nodes : (int, lru_node) Hashtbl.t;
  mutable head : lru_node option;
  mutable tail : lru_node option;
}

type repr =
  | Arr of int array
  | Hash of (int, int) Hashtbl.t
  | Lru of lru_state
  | Ring of { buf : int array; mutable start : int; mutable len : int }

type t = { spec : spec; repr : repr }

let create spec =
  if spec.capacity <= 0 then invalid_arg "Map_store.create: capacity must be positive";
  let repr =
    match spec.kind with
    | Array_map -> Arr (Array.make spec.capacity 0)
    | Hash_map -> Hash (Hashtbl.create (Stdlib.min spec.capacity 1024))
    | Lru_hash_map ->
      Lru { nodes = Hashtbl.create (Stdlib.min spec.capacity 1024); head = None; tail = None }
    | Ring_buffer -> Ring { buf = Array.make spec.capacity 0; start = 0; len = 0 }
  in
  { spec; repr }

let spec t = t.spec

let lru_unlink s node =
  (match node.prev with Some p -> p.next <- node.next | None -> s.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> s.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let lru_push_front s node =
  node.next <- s.head;
  node.prev <- None;
  (match s.head with Some h -> h.prev <- Some node | None -> s.tail <- Some node);
  s.head <- Some node

let lru_touch s node =
  lru_unlink s node;
  lru_push_front s node

let lookup t key =
  match t.repr with
  | Arr a -> if key >= 0 && key < Array.length a then a.(key) else 0
  (* exception-style find: no [Some] boxing on the datapath hot path *)
  | Hash h -> (match Hashtbl.find h key with v -> v | exception Not_found -> 0)
  | Lru s ->
    (match Hashtbl.find s.nodes key with
     | node ->
       lru_touch s node;
       node.value
     | exception Not_found -> 0)
  | Ring _ -> 0

let mem t key =
  match t.repr with
  | Arr a -> key >= 0 && key < Array.length a
  | Hash h -> Hashtbl.mem h key
  | Lru s -> Hashtbl.mem s.nodes key
  | Ring _ -> false

(* Window blit for verifier-proven [Vec_ld_map] on array maps: the abstract
   interpreter guarantees [0 <= base && base + len <= capacity], so the
   per-element bounds checks collapse into one blit. *)
let unsafe_read_window t ~base ~dst ~dst_off ~len =
  match t.repr with
  | Arr a -> Array.blit a base dst dst_off len
  | Hash _ | Lru _ | Ring _ ->
    invalid_arg "Map_store.unsafe_read_window: array maps only"

let update t ~key ~value =
  match t.repr with
  | Arr a -> if key >= 0 && key < Array.length a then a.(key) <- value
  | Hash h ->
    if Hashtbl.mem h key || Hashtbl.length h < t.spec.capacity then Hashtbl.replace h key value
  | Lru s ->
    (match Hashtbl.find_opt s.nodes key with
     | Some node ->
       node.value <- value;
       lru_touch s node
     | None ->
       if Hashtbl.length s.nodes >= t.spec.capacity then begin
         match s.tail with
         | Some victim ->
           lru_unlink s victim;
           Hashtbl.remove s.nodes victim.key
         | None -> ()
       end;
       let node = { key; value; prev = None; next = None } in
       Hashtbl.replace s.nodes key node;
       lru_push_front s node)
  | Ring _ -> invalid_arg "Map_store.update: ring buffers use push"

let delete t key =
  match t.repr with
  | Arr a -> if key >= 0 && key < Array.length a then a.(key) <- 0
  | Hash h -> Hashtbl.remove h key
  | Lru s ->
    (match Hashtbl.find_opt s.nodes key with
     | Some node ->
       lru_unlink s node;
       Hashtbl.remove s.nodes key
     | None -> ())
  | Ring _ -> invalid_arg "Map_store.delete: ring buffers use push"

let push t value =
  match t.repr with
  | Ring r ->
    if r.len < Array.length r.buf then begin
      r.buf.((r.start + r.len) mod Array.length r.buf) <- value;
      r.len <- r.len + 1
    end
    else begin
      r.buf.(r.start) <- value;
      r.start <- (r.start + 1) mod Array.length r.buf
    end
  | Arr _ | Hash _ | Lru _ -> invalid_arg "Map_store.push: not a ring buffer"

let ring_contents t =
  match t.repr with
  | Ring r -> Array.init r.len (fun i -> r.buf.((r.start + i) mod Array.length r.buf))
  | Arr _ | Hash _ | Lru _ -> invalid_arg "Map_store.ring_contents: not a ring buffer"

let size t =
  match t.repr with
  | Arr a -> Array.length a
  | Hash h -> Hashtbl.length h
  | Lru s -> Hashtbl.length s.nodes
  | Ring r -> r.len

let clear t =
  match t.repr with
  | Arr a -> Array.fill a 0 (Array.length a) 0
  | Hash h -> Hashtbl.reset h
  | Lru s ->
    Hashtbl.reset s.nodes;
    s.head <- None;
    s.tail <- None
  | Ring r ->
    r.start <- 0;
    r.len <- 0

let fold f t init =
  match t.repr with
  | Arr a ->
    let acc = ref init in
    Array.iteri (fun i v -> acc := f i v !acc) a;
    !acc
  | Hash h -> Hashtbl.fold f h init
  | Lru s -> Hashtbl.fold (fun k node acc -> f k node.value acc) s.nodes init
  | Ring _ ->
    let contents = ring_contents t in
    let acc = ref init in
    Array.iteri (fun i v -> acc := f i v !acc) contents;
    !acc

let kind_name = function
  | Array_map -> "array"
  | Hash_map -> "hash"
  | Lru_hash_map -> "lru"
  | Ring_buffer -> "ring"

let pp fmt t =
  Format.fprintf fmt "%s(cap=%d, size=%d)" (kind_name t.spec.kind) t.spec.capacity (size t)
