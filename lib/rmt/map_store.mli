(** Kernel state maps available to RMT programs — "data structures for
    monitoring purposes (akin to different types of eBPF maps)" (§3.1).

    Four kinds are provided, mirroring the eBPF map families the paper
    builds on:
    - [Array]: fixed-size int→int array; out-of-range keys read 0 and
      out-of-range updates are dropped (defined, non-trapping semantics).
    - [Hash]: bounded hash map; updates beyond capacity are dropped.
    - [Lru_hash]: bounded hash map that evicts the least recently used
      entry when full (lookups refresh recency).
    - [Ring]: fixed-capacity ring buffer of recent values, newest last —
      the access-history window used by the prefetch pipeline. *)

type kind = Array_map | Hash_map | Lru_hash_map | Ring_buffer

type spec = { kind : kind; capacity : int }
type t

val create : spec -> t
(** Raises [Invalid_argument] on non-positive capacity. *)

val spec : t -> spec
val lookup : t -> int -> int
(** 0 when absent. *)

val mem : t -> int -> bool
val unsafe_read_window : t -> base:int -> dst:int array -> dst_off:int -> len:int -> unit
(** Blit [len] consecutive values starting at key [base] into
    [dst.(dst_off ..)].  Array maps only, no bounds checks: the caller
    must hold a static proof that [0 <= base] and [base + len <=
    capacity] (see {!Absint}).  Raises [Invalid_argument] on non-array
    kinds. *)

val update : t -> key:int -> value:int -> unit
val delete : t -> int -> unit
val push : t -> int -> unit
(** Ring buffers only; raises [Invalid_argument] on other kinds. *)

val ring_contents : t -> int array
(** Oldest first.  Raises [Invalid_argument] on non-ring maps. *)

val size : t -> int
(** Current number of live entries (ring: buffered values). *)

val clear : t -> unit
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over key/value pairs (ring: index/value, oldest first). *)

val pp : Format.formatter -> t -> unit
