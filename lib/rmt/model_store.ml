type model =
  | Tree of Kml.Decision_tree.t
  | Qmlp of Kml.Quantize.Qmlp.t
  | Svm of Kml.Linear.Svm.t
  | Fn of { n_features : int; cost : Kml.Model_cost.t; f : int array -> int }

type slot = { name : string; mutable model : model; mutable invocations : int }

type t = {
  mutable slots : slot array;
  mutable len : int;
  mutable row_scratch : int array;
      (* per-slot feature row for batching models without a native batch
         path (Svm/Fn); sized to the last arity used *)
}

type handle = int

let create () = { slots = [||]; len = 0; row_scratch = [||] }

let n_features = function
  | Tree tree -> Kml.Decision_tree.n_features tree
  | Qmlp q -> Kml.Quantize.Qmlp.n_features q
  | Svm svm -> Kml.Linear.Svm.n_features svm
  | Fn { n_features; _ } -> n_features

let cost = function
  | Tree tree -> Kml.Model_cost.of_tree tree
  | Qmlp q -> Kml.Model_cost.of_qmlp q
  | Svm svm -> Kml.Model_cost.of_svm svm
  | Fn { cost; _ } -> cost

let register t ~name model =
  if t.len >= Array.length t.slots then begin
    let cap = Stdlib.max 8 (2 * Array.length t.slots) in
    let bigger = Array.make cap { name = ""; model; invocations = 0 } in
    Array.blit t.slots 0 bigger 0 t.len;
    t.slots <- bigger
  end;
  let h = t.len in
  t.slots.(h) <- { name; model; invocations = 0 };
  t.len <- t.len + 1;
  h

let check t h name =
  if h < 0 || h >= t.len then invalid_arg ("Model_store." ^ name ^ ": invalid handle")

let replace t h model =
  check t h "replace";
  let slot = t.slots.(h) in
  if n_features model <> n_features slot.model then
    invalid_arg "Model_store.replace: feature arity mismatch";
  slot.model <- model

let find t name =
  let rec go i = if i >= t.len then None else if t.slots.(i).name = name then Some i else go (i + 1) in
  go 0

let name t h =
  check t h "name";
  t.slots.(h).name

let model t h =
  check t h "model";
  t.slots.(h).model

let id h = h
let handle_of_id t i = if i >= 0 && i < t.len then Some i else None

let predict t h features =
  check t h "predict";
  let slot = t.slots.(h) in
  if Array.length features <> n_features slot.model then
    invalid_arg "Model_store.predict: feature arity mismatch";
  slot.invocations <- slot.invocations + 1;
  let r =
    match slot.model with
    | Tree tree -> Kml.Decision_tree.predict tree features
    | Qmlp q -> Kml.Quantize.Qmlp.predict q features
    | Svm svm -> Kml.Linear.Svm.predict svm features
    | Fn { f; _ } -> f features
  in
  (* Fault seam: a pathological model returning extreme or garbage
     outputs (DESIGN.md section 12).  One flag load when disabled. *)
  if Fault.active () then
    if Fault.fire Fault.Model_extreme then Fault.extreme ()
    else if Fault.fire Fault.Model_garbage then Fault.garbage ()
    else r
  else r

(* Exactly [nf] wide — the scalar predictors arity-check their argument. *)
let row_scratch t nf =
  if Array.length t.row_scratch <> nf then t.row_scratch <- Array.make nf 0;
  t.row_scratch

let predict_batch t h ~features ~n ~out =
  check t h "predict_batch";
  let slot = t.slots.(h) in
  let nf = n_features slot.model in
  if n < 0 || Array.length features < n * nf then
    invalid_arg "Model_store.predict_batch: feature buffer too small";
  if Array.length out < n then invalid_arg "Model_store.predict_batch: output buffer too small";
  slot.invocations <- slot.invocations + n;
  (match slot.model with
   | Tree tree -> Kml.Decision_tree.predict_batch tree ~features ~n ~out
   | Qmlp q -> Kml.Quantize.Qmlp.predict_batch q ~features ~n ~out
   | Svm svm ->
     let row = row_scratch t nf in
     for s = 0 to n - 1 do
       Array.blit features (s * nf) row 0 nf;
       out.(s) <- Kml.Linear.Svm.predict svm row
     done
   | Fn { f; _ } ->
     let row = row_scratch t nf in
     for s = 0 to n - 1 do
       Array.blit features (s * nf) row 0 nf;
       out.(s) <- f row
     done);
  (* Same fault seam as [predict], applied per slot so injection
     campaigns see every batched inference as a separate opportunity. *)
  if Fault.active () then
    for s = 0 to n - 1 do
      if Fault.fire Fault.Model_extreme then out.(s) <- Fault.extreme ()
      else if Fault.fire Fault.Model_garbage then out.(s) <- Fault.garbage ()
    done

let invocations t h =
  check t h "invocations";
  t.slots.(h).invocations

let count t = t.len
