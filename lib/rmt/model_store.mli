(** Registered kernel ML models invoked by [Call_ml] (§3.2).

    A model takes an integer feature vector and returns a class index.  The
    store records each model's static cost so the verifier can admit or
    reject programs that reference it, and counts invocations for the
    overhead experiments.  Models are mutable slots: the control plane
    swaps in retrained models at runtime without reloading programs. *)

type model =
  | Tree of Kml.Decision_tree.t
  | Qmlp of Kml.Quantize.Qmlp.t
  | Svm of Kml.Linear.Svm.t
  | Fn of { n_features : int; cost : Kml.Model_cost.t; f : int array -> int }
      (** Escape hatch for tests and custom actions; cost must be declared. *)

type t
type handle

val create : unit -> t
val register : t -> name:string -> model -> handle
val replace : t -> handle -> model -> unit
(** Swap the model in a slot (same feature arity required). *)

val find : t -> string -> handle option
val name : t -> handle -> string
val model : t -> handle -> model
val id : handle -> int
val handle_of_id : t -> int -> handle option
val n_features : model -> int
val cost : model -> Kml.Model_cost.t
val predict : t -> handle -> int array -> int
(** Raises [Invalid_argument] on arity mismatch. *)

val predict_batch : t -> handle -> features:int array -> n:int -> out:int array -> unit
(** Batched [predict]: slot [s]'s features are the row
    [features.(s * arity) ..], its class lands in [out.(s)] — per slot
    bit-identical to [predict] (including the per-slot fault-injection
    seam).  Trees and quantized MLPs use native batch kernels so model
    weights amortize across slots; Svm/Fn models fall back to a per-slot
    loop over a reused row buffer.  The invocation counter advances by
    [n]. *)

val invocations : t -> handle -> int
val count : t -> int
