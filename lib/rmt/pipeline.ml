type hook_state = {
  mutable tables : Table.t list;
  mutable firings : int;
  hook_id : int; (* interned once; trace events carry this id *)
}

type t = {
  hooks : (string, hook_state) Hashtbl.t;
  mutable order : string list; (* first-attach order, newest last *)
}

let create () = { hooks = Hashtbl.create 16; order = [] }

let state t hook =
  match Hashtbl.find_opt t.hooks hook with
  | Some s -> s
  | None ->
    let s = { tables = []; firings = 0; hook_id = Obs.intern hook } in
    Hashtbl.replace t.hooks hook s;
    t.order <- t.order @ [ hook ];
    s

let attach t ~hook table =
  let s = state t hook in
  s.tables <- s.tables @ [ table ]

let detach t ~hook ~name =
  match Hashtbl.find_opt t.hooks hook with
  | None -> false
  | Some s ->
    let before = List.length s.tables in
    s.tables <- List.filter (fun tbl -> Table.name tbl <> name) s.tables;
    List.length s.tables < before

let tables_at t ~hook =
  match Hashtbl.find_opt t.hooks hook with Some s -> s.tables | None -> []

let hooks t = List.filter (fun h -> tables_at t ~hook:h <> []) t.order

(* Hook dispatch totals; the ambient hook id lets VM-level trace events
   attribute themselves to the hook whose table dispatched them. *)
let c_firings = Obs.Counter.make "rmt.pipeline.firings"

let fire_all t ~hook ~ctxt ~now =
  match Hashtbl.find_opt t.hooks hook with
  | None -> []
  | Some s ->
    if s.tables <> [] then begin
      s.firings <- s.firings + 1;
      Obs.Counter.incr c_firings
    end;
    if Obs.enabled () then Obs.Trace.set_current_hook s.hook_id;
    let results = List.map (fun table -> Table.lookup table ~ctxt ~now) s.tables in
    if Obs.enabled () then Obs.Trace.set_current_hook (-1);
    results

let fire t ~hook ~ctxt ~now =
  match List.rev (fire_all t ~hook ~ctxt ~now) with
  | [] -> None
  | last :: _ -> Some last

let firings t ~hook =
  match Hashtbl.find_opt t.hooks hook with Some s -> s.firings | None -> 0

let pp fmt t =
  List.iter
    (fun hook ->
      Format.fprintf fmt "hook %s (%d firings):@." hook (firings t ~hook);
      List.iter (fun table -> Format.fprintf fmt "  %a" Table.pp table) (tables_at t ~hook))
    (hooks t)
