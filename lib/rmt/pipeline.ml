(* Per-hook failsafe (DESIGN.md section 12): a circuit breaker guarding
   the learned tables, plus the stock-heuristic fallback served while the
   breaker is open.  [vms] are the hook's learned programs, polled after
   each successful dispatch for guardrail storms and rate-limit
   saturation; on a breaker trip they are rolled back to their
   pre-promotion incumbents if a canary grace window is still open. *)
type protection = {
  breaker : Breaker.t;
  fallback : Ctxt.t -> int;
  guard_vms : Vm.t array;
  guardrail_rate : float; (* windowed violation rate that counts as failure *)
  saturation_streak : int; (* consecutive throttled firings that count as failure *)
  mutable fallback_served : int;
  mutable last_throttled : int; (* sum of vm throttled_units at last firing *)
  mutable throttle_streak : int;
}

type hook_state = {
  mutable tables : Table.t list;
  mutable firings : int;
  hook_id : int; (* interned once; trace events carry this id *)
  mutable protection : protection option;
}

type t = {
  hooks : (string, hook_state) Hashtbl.t;
  mutable order : string list; (* first-attach order, newest last *)
  view_ns : string; (* registry namespace for per-pipeline views *)
}

let create ?(view_ns = "rmt") () =
  { hooks = Hashtbl.create 16; order = []; view_ns }

let view_ns t = t.view_ns

let state t hook =
  match Hashtbl.find_opt t.hooks hook with
  | Some s -> s
  | None ->
    let s = { tables = []; firings = 0; hook_id = Obs.intern hook; protection = None } in
    Hashtbl.replace t.hooks hook s;
    t.order <- t.order @ [ hook ];
    s

let attach t ~hook table =
  let s = state t hook in
  s.tables <- s.tables @ [ table ]

let detach t ~hook ~name =
  match Hashtbl.find_opt t.hooks hook with
  | None -> false
  | Some s ->
    let before = List.length s.tables in
    s.tables <- List.filter (fun tbl -> Table.name tbl <> name) s.tables;
    List.length s.tables < before

let tables_at t ~hook =
  match Hashtbl.find_opt t.hooks hook with Some s -> s.tables | None -> []

let hooks t = List.filter (fun h -> tables_at t ~hook:h <> []) t.order

(* Hook dispatch totals; the ambient hook id lets VM-level trace events
   attribute themselves to the hook whose table dispatched them. *)
let c_firings = Obs.Counter.make "rmt.pipeline.firings"
let c_fallback = Obs.Counter.make "rmt.pipeline.fallback_served"
let c_trap_fallback = Obs.Counter.make "rmt.pipeline.trap_fallbacks"

let protect t ~hook ?config ?breaker ?(vms = [||]) ~fallback () =
  let s = state t hook in
  let breaker =
    match breaker with Some b -> b | None -> Breaker.create ?config hook
  in
  let cfg = Breaker.config breaker in
  s.protection <-
    Some
      { breaker;
        fallback;
        guard_vms = vms;
        guardrail_rate = cfg.Breaker.guardrail_rate;
        saturation_streak = cfg.Breaker.saturation_streak;
        fallback_served = 0;
        last_throttled = 0;
        throttle_streak = 0 };
  Obs.Registry.register_view
    (Printf.sprintf "%s.breaker.%s.state" t.view_ns hook)
    (fun () -> Breaker.state_code (Breaker.state breaker));
  Obs.Registry.register_view
    (Printf.sprintf "%s.breaker.%s.fallback_served" t.view_ns hook)
    (fun () -> match s.protection with Some p -> p.fallback_served | None -> 0);
  breaker

let breaker t ~hook =
  match Hashtbl.find_opt t.hooks hook with
  | Some { protection = Some p; _ } -> Some p.breaker
  | Some { protection = None; _ } | None -> None

let fallback_served t ~hook =
  match Hashtbl.find_opt t.hooks hook with
  | Some { protection = Some p; _ } -> p.fallback_served
  | Some { protection = None; _ } | None -> 0

let serve_fallback p ~ctxt =
  p.fallback_served <- p.fallback_served + 1;
  Obs.Counter.incr c_fallback;
  [ p.fallback ctxt ]

let sum_throttled vms =
  Array.fold_left (fun acc vm -> acc + Vm.throttled_units vm) 0 vms

(* Top level (not a closure) so the per-batch health poll allocates
   nothing: the serving layer runs it once per drained batch with
   telemetry on. *)
let rec any_guardrail_storm vms rate i =
  i < Array.length vms
  && (Vm.guardrail_degraded (Array.unsafe_get vms i) ~rate
      || any_guardrail_storm vms rate (i + 1))

(* Post-dispatch health monitors: a guardrail-violation storm on any of
   the hook's programs, or sustained rate-limiter saturation, count as
   breaker failures even though each individual firing "succeeded". *)
let observe_health p ~now_ns =
  let throttled = sum_throttled p.guard_vms in
  if throttled > p.last_throttled then p.throttle_streak <- p.throttle_streak + 1
  else p.throttle_streak <- 0;
  p.last_throttled <- throttled;
  let saturated = p.throttle_streak >= p.saturation_streak in
  if saturated then p.throttle_streak <- 0;
  if saturated || any_guardrail_storm p.guard_vms p.guardrail_rate 0 then
    Breaker.record_failure p.breaker ~now:now_ns
  else Breaker.record_success p.breaker ~now:now_ns

let dispatch s ~ctxt ~now =
  if Obs.enabled () then Obs.Trace.set_current_hook s.hook_id;
  let results = List.map (fun table -> Table.lookup table ~ctxt ~now) s.tables in
  if Obs.enabled () then Obs.Trace.set_current_hook (-1);
  results

let fire_protected s p ~ctxt ~now =
  let now_ns = now () in
  if not (Breaker.allow p.breaker ~now:now_ns) then serve_fallback p ~ctxt
  else
    match dispatch s ~ctxt ~now with
    | results ->
      observe_health p ~now_ns;
      results
    | exception Interp.Trap _ ->
      (* Contained engine fault: fail the breaker, roll any program still
         in a canary grace window back to its incumbent, and serve the
         stock heuristic for this event. *)
      if Obs.enabled () then Obs.Trace.set_current_hook (-1);
      Obs.Counter.incr c_trap_fallback;
      Breaker.record_failure p.breaker ~now:now_ns;
      Array.iter (fun vm -> ignore (Vm.rollback vm)) p.guard_vms;
      serve_fallback p ~ctxt

(* ------------------------------------------------------------------ *)
(* Batched firing (DESIGN.md section 13)                               *)
(* ------------------------------------------------------------------ *)

(* Top level (not a closure over [b]/[now]) so batched dispatch allocates
   nothing beyond what the tables themselves do. *)
let rec lookup_batch_tables tables b ~now =
  match tables with
  | [] -> ()
  | table :: rest ->
    Table.lookup_batch table b ~now;
    lookup_batch_tables rest b ~now

let dispatch_batch s b ~now =
  if Obs.enabled () then Obs.Trace.set_current_hook s.hook_id;
  lookup_batch_tables s.tables b ~now;
  if Obs.enabled () then Obs.Trace.set_current_hook (-1)

(* Serve the stock heuristic for one slot; the trap marker (if any) is
   kept so callers can still see that the learned path failed there. *)
let fallback_slot p (b : Batch.t) s =
  p.fallback_served <- p.fallback_served + 1;
  Obs.Counter.incr c_fallback;
  b.Batch.results.(s) <- p.fallback b.Batch.ctxts.(s)

let rec any_trap (b : Batch.t) s n =
  s < n && (b.Batch.traps.(s) != None || any_trap b (s + 1) n)

(* Protected batch firing: the breaker grants one admission decision per
   batch (a batch is one arrival at the hook), then failure containment
   is per slot — a slot whose program trapped is served the stock
   heuristic and marked in [traps], the other slots keep their learned
   results, and the breaker records a single failure for the batch (plus
   a grace-window rollback of the hook's programs, as in the scalar
   path). *)
let fire_protected_batch s p b ~now =
  let now_ns = now () in
  if not (Breaker.allow p.breaker ~now:now_ns) then
    for slot = 0 to b.Batch.n - 1 do
      b.Batch.traps.(slot) <- None;
      b.Batch.steps.(slot) <- 0;
      b.Batch.denied.(slot) <- 0;
      fallback_slot p b slot
    done
  else begin
    dispatch_batch s b ~now;
    if any_trap b 0 b.Batch.n then begin
      Obs.Counter.incr c_trap_fallback;
      Breaker.record_failure p.breaker ~now:now_ns;
      Array.iter (fun vm -> ignore (Vm.rollback vm : bool)) p.guard_vms;
      for slot = 0 to b.Batch.n - 1 do
        if b.Batch.traps.(slot) != None then fallback_slot p b slot
      done
    end
    else observe_health p ~now_ns
  end

let fire_batch t ~hook b ~now =
  (* [find] + exception, not [find_opt]: the option would be a fresh
     minor-heap cell on every batch of the serving loop. *)
  match Hashtbl.find t.hooks hook with
  | exception Not_found -> false
  | s ->
    if s.tables = [] then false
    else begin
      let n = b.Batch.n in
      if n > 0 then begin
        s.firings <- s.firings + n;
        Obs.Counter.add c_firings n;
        match s.protection with
        | Some p -> fire_protected_batch s p b ~now
        | None -> dispatch_batch s b ~now
      end;
      true
    end

let fire_all t ~hook ~ctxt ~now =
  match Hashtbl.find_opt t.hooks hook with
  | None -> []
  | Some s ->
    if s.tables <> [] then begin
      s.firings <- s.firings + 1;
      Obs.Counter.incr c_firings
    end;
    (match s.protection with
     | Some p when s.tables <> [] -> fire_protected s p ~ctxt ~now
     | Some _ | None -> dispatch s ~ctxt ~now)

let fire t ~hook ~ctxt ~now =
  match List.rev (fire_all t ~hook ~ctxt ~now) with
  | [] -> None
  | last :: _ -> Some last

let firings t ~hook =
  match Hashtbl.find_opt t.hooks hook with Some s -> s.firings | None -> 0

let pp fmt t =
  List.iter
    (fun hook ->
      Format.fprintf fmt "hook %s (%d firings):@." hook (firings t ~hook);
      (match Hashtbl.find_opt t.hooks hook with
       | Some { protection = Some p; _ } ->
         Format.fprintf fmt "  breaker %s: %s, %d fallback served@."
           (Breaker.name p.breaker)
           (match Breaker.state p.breaker with
            | Breaker.Closed -> "closed"
            | Breaker.Open -> "open"
            | Breaker.Half_open -> "half-open")
           p.fallback_served
       | Some { protection = None; _ } | None -> ());
      List.iter (fun table -> Format.fprintf fmt "  %a" Table.pp table) (tables_at t ~hook))
    (hooks t)
