(** Pipelines bind match/action tables to named kernel hook points
    ("each table represents a kernel hooking point", §3.1).

    A hook point is identified by a string (e.g. ["lookup_swap_cache"],
    ["can_migrate_task"]).  Several tables may attach to one hook; they
    fire in attach order and the {e last} table's action result is the
    hook's decision (earlier tables are typically data-collection stages
    whose result is ignored, mirroring the paper's two-stage prefetch
    pipeline).

    A hook may additionally be {!protect}ed: a circuit breaker watches
    every firing, and while it is open the hook serves a registered
    stock-heuristic fallback instead of dispatching the learned tables
    (DESIGN.md section 12). *)

type t

val create : ?view_ns:string -> unit -> t
(** [view_ns] (default ["rmt"]) prefixes every registry view this
    pipeline registers — {!protect} registers
    [<view_ns>.breaker.<hook>.*] — so several pipelines (one per serving
    shard, say) publish disjoint telemetry instead of silently rebinding
    each other's views. *)

val view_ns : t -> string
val attach : t -> hook:string -> Table.t -> unit
val detach : t -> hook:string -> name:string -> bool
(** Detach a table by name; [false] when absent. *)

val tables_at : t -> hook:string -> Table.t list
val hooks : t -> string list
(** All hooks with at least one table, in first-attach order. *)

val fire : t -> hook:string -> ctxt:Ctxt.t -> now:(unit -> int) -> int option
(** Run the hook's tables; [None] when nothing is attached.  The result is
    the last table's action result.  On a protected hook, the fallback's
    result is returned instead whenever the breaker is open or the
    dispatch traps — {!fire} on a protected hook never raises for a
    contained engine fault. *)

val fire_all : t -> hook:string -> ctxt:Ctxt.t -> now:(unit -> int) -> int list
(** All action results, in table order.  On a protected hook serving its
    fallback, the single-element list [[fallback ctxt]]. *)

val fire_batch : t -> hook:string -> Batch.t -> now:(unit -> int) -> bool
(** Batched {!fire}: run every attached table over the whole batch (in
    attach order, via {!Table.lookup_batch}); the last table's results
    stay in the batch columns, exactly as scalar [fire] returns the last
    table's action result.  [false] when nothing is attached (columns
    untouched).  [firings] advances by [b.n] — each slot is one event.

    On a protected hook the breaker grants one admission decision per
    batch; failure containment is then per slot: a slot whose program
    trapped keeps its [traps] marker and is served the stock fallback,
    the remaining slots keep their learned results, and the breaker
    records one failure for the batch (rolling back any [vms] still in a
    canary grace window).  While the breaker is open every slot gets the
    fallback.  Never raises for a contained engine fault. *)

(** {2 Failsafe protection} *)

val protect :
  t ->
  hook:string ->
  ?config:Breaker.config ->
  ?breaker:Breaker.t ->
  ?vms:Vm.t array ->
  fallback:(Ctxt.t -> int) ->
  unit ->
  Breaker.t
(** Arm [hook] with a circuit breaker and a stock-heuristic [fallback].

    While the breaker is open, {!fire} returns [fallback ctxt] without
    touching the tables; half-open probes let real traffic through again
    after the backoff.  Failures recorded against the breaker: a
    contained engine trap during dispatch (which also rolls back any
    [vms] still inside a canary grace window), a guardrail-violation
    storm on any of [vms] (windowed rate >= [config.guardrail_rate]),
    or [config.saturation_streak] consecutive firings in which the
    [vms]' rate limiters refused units.  Everything else records a
    success.

    [?breaker] shares an existing breaker across hooks (e.g. both stages
    of the prefetch pipeline trip together); otherwise a fresh one is
    created from [?config] and named after the hook.  Registers gauge
    views [<view_ns>.breaker.<hook>.state] and
    [<view_ns>.breaker.<hook>.fallback_served].  Returns the armed
    breaker. *)

val breaker : t -> hook:string -> Breaker.t option
val fallback_served : t -> hook:string -> int
(** Events answered by the fallback instead of the learned tables. *)

val firings : t -> hook:string -> int
val pp : Format.formatter -> t -> unit
