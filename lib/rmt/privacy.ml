type account = {
  budget_milli : int;
  mutable spent_milli : int;
  mutable denials : int;
}

(* Process-wide DP accounting (DESIGN.md section 11); per-account
   accessors are unchanged.  Privacy-charged helpers are rare on the
   datapath, so counting every charge outcome is cheap. *)
let c_grants = Obs.Counter.make "rmt.privacy.grants"
let c_denials = Obs.Counter.make "rmt.privacy.denials"
let c_spent_milli = Obs.Counter.make "rmt.privacy.spent_milli"

let create ~epsilon_milli =
  if epsilon_milli < 0 then invalid_arg "Privacy.create: negative budget";
  { budget_milli = epsilon_milli; spent_milli = 0; denials = 0 }

let remaining_milli t = t.budget_milli - t.spent_milli
let spent_milli t = t.spent_milli
let denials t = t.denials

type grant = Granted of { epsilon_milli : int } | Denied

let charge t ~cost_milli =
  if cost_milli <= 0 then invalid_arg "Privacy.charge: cost must be positive";
  if remaining_milli t >= cost_milli then begin
    t.spent_milli <- t.spent_milli + cost_milli;
    Obs.Counter.incr c_grants;
    Obs.Counter.add c_spent_milli cost_milli;
    Granted { epsilon_milli = cost_milli }
  end
  else begin
    t.denials <- t.denials + 1;
    Obs.Counter.incr c_denials;
    Denied
  end

(* Two-sided geometric mechanism: X = G1 - G2 where Gi ~ Geometric(1 - alpha)
   and alpha = exp(-epsilon / sensitivity).  Provides epsilon-DP for integer
   queries of the given L1 sensitivity. *)
let noise ~rng ~epsilon_milli ~sensitivity =
  if epsilon_milli <= 0 then invalid_arg "Privacy.noise: epsilon must be positive";
  if sensitivity <= 0 then invalid_arg "Privacy.noise: sensitivity must be positive";
  let alpha = exp (-.(float_of_int epsilon_milli /. 1000.0) /. float_of_int sensitivity) in
  let p = 1.0 -. alpha in
  let g1 = Kml.Rng.geometric rng ~p and g2 = Kml.Rng.geometric rng ~p in
  g1 - g2

let noisy_result t ~rng ~cost_milli ~sensitivity v =
  match charge t ~cost_milli with
  | Denied -> None
  | Granted { epsilon_milli } -> Some (v + noise ~rng ~epsilon_milli ~sensitivity)
