let ns_per_sec = 1_000_000_000

type t = {
  tokens_per_sec : int;
  burst : int;
  burst_ns : int; (* burst scaled by ns_per_sec, saturated at max_int *)
  mutable tokens_ns : int; (* scaled by ns_per_sec to avoid fractional tokens *)
  mutable last_refill : int;
  mutable throttled : int;
}

(* Process-wide throttling totals; the per-bucket [throttled] accessor is
   unchanged.  Only the refusal path (cold) touches the counters. *)
let c_throttle_events = Obs.Counter.make "rmt.rate_limit.throttle_events"
let c_throttled_units = Obs.Counter.make "rmt.rate_limit.throttled_units"

(* Saturating arithmetic: clock values and requests arrive from programs
   and simulated time, so [min_int]/[max_int] corners must clamp instead
   of wrapping (test/test_rmt_infra.ml pins these down). *)
let sat_add a b =
  let s = a + b in
  if a >= 0 && b >= 0 && s < 0 then max_int else s

let sat_mul_pos a b = if a > 0 && b > 0 && a > max_int / b then max_int else a * b

let create ~tokens_per_sec ~burst ~now =
  if tokens_per_sec <= 0 then invalid_arg "Rate_limit.create: tokens_per_sec must be positive";
  if burst <= 0 then invalid_arg "Rate_limit.create: burst must be positive";
  let burst_ns = sat_mul_pos burst ns_per_sec in
  { tokens_per_sec; burst; burst_ns; tokens_ns = burst_ns; last_refill = now; throttled = 0 }

let refill t ~now =
  if now > t.last_refill then begin
    (* [now - last_refill] can wrap when the clock spans the int range
       (last near min_int, now near max_int): saturate instead. *)
    let elapsed =
      let e = now - t.last_refill in
      if e < 0 then max_int else e
    in
    let gained = sat_mul_pos elapsed t.tokens_per_sec in
    t.tokens_ns <- Stdlib.min t.burst_ns (sat_add t.tokens_ns gained);
    t.last_refill <- now
  end

let available t ~now =
  refill t ~now;
  t.tokens_ns / ns_per_sec

let grant t ~now ~request =
  refill t ~now;
  let request = Stdlib.max 0 request in
  let avail = t.tokens_ns / ns_per_sec in
  let granted = Stdlib.min request avail in
  t.tokens_ns <- t.tokens_ns - (granted * ns_per_sec);
  let refused = request - granted in
  t.throttled <- sat_add t.throttled refused;
  if refused > 0 then begin
    Obs.Counter.incr c_throttle_events;
    Obs.Counter.add c_throttled_units refused
  end;
  granted

let throttled t = t.throttled

let reset t ~now =
  t.tokens_ns <- t.burst_ns;
  t.last_refill <- now;
  t.throttled <- 0
