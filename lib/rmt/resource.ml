type t = {
  program : string;
  steps : int;
  scratch_words : int;
  const_words : int;
  table_slots : int;
  folded : int;
  reduced : int;
  dead_arms : int;
  fast_reps : int;
  elided_guards : int;
}

type budget = { max_steps : int; max_scratch_words : int; max_table_slots : int }

let default_budget =
  { max_steps = Verifier.default_limits.Verifier.max_steps;
    max_scratch_words = Verifier.default_limits.Verifier.max_vmem;
    max_table_slots = 16 }

let of_report (report : Verifier.report) (prog : Program.t) =
  let spec =
    if Array.length report.Verifier.facts = Array.length prog.Program.code then
      Specialize.plan ~facts:report.Verifier.facts prog
    else Specialize.identity prog
  in
  let elided_guards =
    Array.fold_left
      (fun acc p ->
        if Absint.Proof.key_dense p || Absint.Proof.key_nonneg p
           || Absint.Proof.window_in_bounds p
        then acc + 1
        else acc)
      0 report.Verifier.proof
  in
  { program = prog.Program.name;
    steps = report.Verifier.worst_case_steps;
    scratch_words = prog.Program.vmem_size;
    const_words =
      Array.fold_left
        (fun acc c -> acc + (c.Program.rows * c.Program.cols))
        0 prog.Program.consts;
    table_slots =
      Array.length prog.Program.map_specs
      + Array.length prog.Program.model_arity
      + prog.Program.n_prog_slots;
    folded = spec.Specialize.folded;
    reduced = spec.Specialize.reduced;
    dead_arms = spec.Specialize.dead_arms;
    fast_reps = spec.Specialize.fast_reps;
    elided_guards }

let specialized_sites t = t.folded + t.reduced + t.dead_arms + t.fast_reps

let within t b =
  t.steps <= b.max_steps
  && t.scratch_words <= b.max_scratch_words
  && t.table_slots <= b.max_table_slots

let violations t b =
  let over what used allowed acc =
    if used > allowed then
      Printf.sprintf "%s: %d exceeds budget %d" what used allowed :: acc
    else acc
  in
  List.rev
    (over "steps" t.steps b.max_steps
       (over "scratch words" t.scratch_words b.max_scratch_words
          (over "table slots" t.table_slots b.max_table_slots [])))

let pp fmt t =
  Format.fprintf fmt
    "@[<v>resource report: %s@,\
    \  worst-case steps   %d@,\
    \  scratch words      %d@,\
    \  constant words     %d@,\
    \  table slots        %d@,\
    \  specialized sites  %d (%d folded, %d reduced, %d dead arms, %d fast reps)@,\
    \  elided guards      %d@]"
    t.program t.steps t.scratch_words t.const_words t.table_slots (specialized_sites t)
    t.folded t.reduced t.dead_arms t.fast_reps t.elided_guards

let to_json t =
  Printf.sprintf
    "{\"program\":%S,\"steps\":%d,\"scratch_words\":%d,\"const_words\":%d,\
     \"table_slots\":%d,\"folded\":%d,\"reduced\":%d,\"dead_arms\":%d,\
     \"fast_reps\":%d,\"specialized_sites\":%d,\"elided_guards\":%d}"
    t.program t.steps t.scratch_words t.const_words t.table_slots t.folded t.reduced
    t.dead_arms t.fast_reps (specialized_sites t) t.elided_guards
