(** Compile-time resource reports (Homunculus-style admission artifacts).

    When the verifier admits a program, everything that bounds its
    runtime footprint is already known statically: the worst-case dynamic
    step count, the scratchpad and constant-pool words it touches, the
    kernel-object slots it will pin at link time, and — with interval
    facts — exactly which sites the JIT will specialize.  [of_report]
    packages those numbers into one record per program, so operators can
    see what an install costs {e before} it serves traffic and CI can
    diff reports across revisions.

    A {!budget} is the declared ceiling an installation must fit under:
    {!Control.install} rejects programs over budget when one is supplied,
    and [rkdctl verify --max-steps/--max-scratch/--max-slots] exits
    nonzero — the same shape the NAS search already uses for the model
    dimension ({!Kml.Model_cost.budget}), so a search can co-optimize
    model cost against the program budget that hosts it. *)

type t = {
  program : string;
  steps : int;          (** verifier worst-case dynamic instructions; exact
                            for the specialized JIT too, since every
                            {!Specialize} rewrite preserves step counts *)
  scratch_words : int;  (** vector scratchpad words zeroed per invocation *)
  const_words : int;    (** total constant-pool words pinned at link time *)
  table_slots : int;    (** kernel-object slots: maps + models + tail calls *)
  folded : int;         (** instructions folded to [Ld_imm] *)
  reduced : int;        (** strength-reduced ALU sites *)
  dead_arms : int;      (** branches compiled unconditional *)
  fast_reps : int;      (** [Rep] loops iterating without early-exit checks *)
  elided_guards : int;  (** runtime guards discharged by verifier proofs *)
}

type budget = { max_steps : int; max_scratch_words : int; max_table_slots : int }

val default_budget : budget
(** Mirrors {!Verifier.default_limits} for steps and scratch; 16 slots. *)

val of_report : Verifier.report -> Program.t -> t
(** Derive the report for a verified program.  The specialization counts
    come from {!Specialize.plan} on the report's interval facts, i.e.
    they are exactly what {!Jit.compile} will do with this report. *)

val specialized_sites : t -> int
(** [folded + reduced + dead_arms + fast_reps]. *)

val within : t -> budget -> bool

val violations : t -> budget -> string list
(** Human-readable budget violations; [[]] iff {!within}. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object (stable key order) for CI artifacts. *)
