type branch = B_keep | B_always | B_never

type t = {
  effective : Insn.t array;
  branch : branch array;
  fast_rep : bool array;
  folded : int;
  reduced : int;
  dead_arms : int;
  fast_reps : int;
}

let identity (prog : Program.t) =
  let n = Array.length prog.code in
  { effective = Array.copy prog.code;
    branch = Array.make (Stdlib.max 1 n) B_keep;
    fast_rep = Array.make (Stdlib.max 1 n) false;
    folded = 0;
    reduced = 0;
    dead_arms = 0;
    fast_reps = 0 }

(* log2 of a positive power of two, or -1. *)
let pow2_exp v =
  if v > 0 && v land (v - 1) = 0 then
    let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
    go 0 v
  else -1

(* Can the body range [lo, hi] leave the enclosing Rep early?  Only Exit
   and Tail_call escape a compiled range; local jumps stay inside it. *)
let rec body_escapes code lo hi =
  lo <= hi
  && (match code.(lo) with
      | Insn.Exit | Insn.Tail_call _ -> true
      | _ -> body_escapes code (lo + 1) hi)

(* Rewrite a reg-reg ALU whose right operand is pinned to [c].  The
   immediate forms below are exactly equivalent under eval_alu's total
   semantics:
   - [Mul] by 2^k is [Shl k] (both wrap modulo the native int width;
     k <= 62 so the shift mask in eval_alu is a no-op);
   - for a proven-nonnegative left operand, [Div] by 2^k is [Shr k]
     (truncating division = arithmetic shift for a >= 0) and [Mod] by
     2^k is [And (2^k - 1)];
   - anything else keeps the operation but loses the register load. *)
let reduce_with_const op rd a_nonneg c =
  let k = pow2_exp c in
  match op with
  | Insn.Mul when k >= 0 -> Insn.Alu_imm (Insn.Shl, rd, k)
  | Insn.Div when k >= 0 && a_nonneg -> Insn.Alu_imm (Insn.Shr, rd, k)
  | Insn.Mod when k >= 0 && a_nonneg -> Insn.Alu_imm (Insn.And, rd, c - 1)
  | _ -> Insn.Alu_imm (op, rd, c)

let plan ~(facts : Absint.fact option array) (prog : Program.t) =
  let code = prog.code in
  let n = Array.length code in
  if Array.length facts <> n || n = 0 then identity prog
  else begin
    let effective = Array.copy code in
    let branch = Array.make n B_keep in
    let fast_rep = Array.make n false in
    let folded = ref 0 and reduced = ref 0 and dead_arms = ref 0 and fast_reps = ref 0 in
    let module I = Absint.Interval in
    for pc = 0 to n - 1 do
      match facts.(pc) with
      | None -> () (* unreachable: never executed, compile as written *)
      | Some fact ->
        let regs = fact.Absint.regs in
        (match code.(pc) with
         | Insn.Mov (rd, rs) ->
           (match I.const_value regs.(rs) with
            | Some v ->
              effective.(pc) <- Insn.Ld_imm (rd, v);
              incr folded
            | None -> ())
         | Insn.Alu (op, rd, rs) ->
           let a = regs.(rd) and b = regs.(rs) in
           (match I.const_value a, I.const_value b with
            | Some va, Some vb ->
              effective.(pc) <- Insn.Ld_imm (rd, Insn.eval_alu op va vb);
              incr folded
            | _, Some vb ->
              effective.(pc) <- reduce_with_const op rd (I.nonneg a) vb;
              incr reduced
            | _, None -> ())
         | Insn.Alu_imm (op, rd, imm) ->
           let a = regs.(rd) in
           (match I.const_value a with
            | Some va ->
              effective.(pc) <- Insn.Ld_imm (rd, Insn.eval_alu op va imm);
              incr folded
            | None ->
              let r = reduce_with_const op rd (I.nonneg a) imm in
              if r <> Insn.Alu_imm (op, rd, imm) then begin
                effective.(pc) <- r;
                incr reduced
              end)
         | Insn.Jcond (c, ra, rb, _) ->
           let a = regs.(ra) and b = regs.(rb) in
           if I.refine c a b = None then begin
             branch.(pc) <- B_never;
             incr dead_arms
           end
           else if I.refine (I.negate_cond c) a b = None then begin
             branch.(pc) <- B_always;
             incr dead_arms
           end
         | Insn.Jcond_imm (c, ra, imm, _) ->
           let a = regs.(ra) and b = I.const imm in
           if I.refine c a b = None then begin
             branch.(pc) <- B_never;
             incr dead_arms
           end
           else if I.refine (I.negate_cond c) a b = None then begin
             branch.(pc) <- B_always;
             incr dead_arms
           end
         | Insn.Rep (_, body_len) ->
           if body_len > 0 && pc + body_len < n
              && not (body_escapes code (pc + 1) (pc + body_len))
           then begin
             fast_rep.(pc) <- true;
             incr fast_reps
           end
         | Insn.Ld_imm _ | Insn.Ld_ctxt _ | Insn.Ld_ctxt_k _ | Insn.St_ctxt _
         | Insn.St_ctxt_r _ | Insn.Map_lookup _ | Insn.Map_update _ | Insn.Map_delete _
         | Insn.Ring_push _ | Insn.Jmp _ | Insn.Call _ | Insn.Call_ml _
         | Insn.Vec_ld_ctxt _ | Insn.Vec_ld_map _ | Insn.Vec_st_reg _ | Insn.Vec_ld_reg _
         | Insn.Vec_i2f _ | Insn.Mat_mul _ | Insn.Vec_add_const _ | Insn.Vec_relu _
         | Insn.Vec_argmax _ | Insn.Tail_call _ | Insn.Exit -> ())
    done;
    { effective;
      branch;
      fast_rep;
      folded = !folded;
      reduced = !reduced;
      dead_arms = !dead_arms;
      fast_reps = !fast_reps }
  end

let specialized_sites t = t.folded + t.reduced + t.dead_arms + t.fast_reps

let pp fmt t =
  Format.fprintf fmt "folded=%d reduced=%d dead_arms=%d fast_reps=%d" t.folded t.reduced
    t.dead_arms t.fast_reps
