(** Proof-specialized codegen planning (DESIGN.md section 13).

    [plan] consumes the per-pc interval facts produced by {!Absint} and
    decides, per instruction, which rewrite the JIT may apply beyond the
    guard elision already driven by {!Absint.Proof}:

    - {b constant folding}: an ALU/Mov whose inputs are pinned to single
      values rewrites to a [Ld_imm] of the value computed at compile time
      with {!Insn.eval_alu}'s exact wrap-around semantics;
    - {b strength reduction}: a reg-reg ALU whose right operand is pinned
      rewrites to the immediate form; multiply by a power of two becomes
      a shift, and divide/modulo by a power of two become shift/mask when
      the left operand is proven non-negative (where truncating division
      and arithmetic shift agree);
    - {b dead-arm elimination}: a conditional branch whose comparison is
      infeasible (or whose negation is) loses its untaken arm and
      compiles to a fall-through (or an unconditional jump);
    - {b [Rep] fast loops}: a body that can be proven never to leave the
      loop early (no [Exit]/[Tail_call] in its range) iterates without
      the per-iteration early-exit check.

    Every rewrite preserves the observable semantics {e and the exact
    dynamic step count} of the original instruction, so specialized code
    stays bit- and step-identical to {!Interp} — the differential fuzzer
    checks this.  A plan built without facts (or with a fact array of the
    wrong length) is the identity: guard-elision-only compilation. *)

type branch =
  | B_keep    (** compile the conditional as written *)
  | B_always  (** proven taken: unconditional jump to the target *)
  | B_never   (** proven untaken: unconditional fall-through *)

type t = {
  effective : Insn.t array;
      (** per-pc instruction to compile; differs from the program's code
          only at folded / strength-reduced [Mov]/[Alu]/[Alu_imm] sites,
          and the replacement is always itself register-only (so fused
          straight-line blocks still fuse) *)
  branch : branch array;  (** per-pc; [B_keep] at non-branch sites *)
  fast_rep : bool array;  (** per-pc; true at [Rep]s with no-early-exit bodies *)
  folded : int;           (** sites rewritten to a compile-time constant *)
  reduced : int;          (** sites strength-reduced (imm form / shift / mask) *)
  dead_arms : int;        (** branches with a statically dead arm *)
  fast_reps : int;        (** [Rep] sites iterating without the exit check *)
}

val identity : Program.t -> t
(** No facts: every instruction compiles as written. *)

val plan : facts:Absint.fact option array -> Program.t -> t
(** [facts] as stored on {!Loaded.t}: one entry per pc ([None] =
    unreachable).  An empty or wrong-length array yields {!identity}. *)

val specialized_sites : t -> int
(** [folded + reduced + dead_arms + fast_reps]. *)

val pp : Format.formatter -> t -> unit
