type pattern =
  | Any
  | Eq of int
  | Mask of { value : int; mask : int }
  | Between of int * int

type action =
  | Run of Vm.t
  | Const of int
  | Host of (Ctxt.t -> int)

type entry_id = int

type entry = {
  id : entry_id;
  priority : int;
  seq : int; (* insertion order; earlier wins among equal priorities *)
  patterns : pattern array;
  mutable action : action;
  mutable hits : int;
}

(* Lookup structure: entries whose patterns are all Eq/Any are "exact" and
   indexed by a hash of their Eq-position bitmask plus the Eq values, giving
   O(1) dispatch per distinct wildcard shape.  Entries with Mask/Between
   patterns stay on a sorted scan list.  Both candidate sets are consulted
   and the best entry (priority desc, insertion order asc) wins, so the
   observable match semantics are identical to a full sorted scan. *)
type t = {
  name : string;
  match_keys : int array;
  default : action;
  mutable entries : entry list; (* all entries; kept sorted: priority desc, seq asc *)
  mutable scan_entries : entry list; (* non-exact entries, same order *)
  index : (int, entry list) Hashtbl.t; (* bucket lists sorted best-first *)
  mutable group_masks : int array; (* distinct Eq-position bitmasks in the index *)
  fields : int array; (* per-lookup scratch; one slot per match key *)
  mutable entry_scratch : entry array; (* per-slot resolved entries for lookup_batch *)
  mutable next_id : int;
  mutable next_seq : int;
  mutable total_hits : int;
  mutable default_hits : int;
}

(* Bitmask bookkeeping needs one bit per match key. *)
let max_indexable_arity = 60

(* Process-wide match totals across every table (DESIGN.md section 11);
   the per-table / per-entry hit accessors below are unchanged. *)
let c_lookups = Obs.Counter.make "rmt.table.lookups"
let c_default_hits = Obs.Counter.make "rmt.table.default_hits"
let c_inserts = Obs.Counter.make "rmt.table.inserts"

let create ~name ~match_keys ~default =
  { name;
    match_keys = Array.copy match_keys;
    default;
    entries = [];
    scan_entries = [];
    index = Hashtbl.create 16;
    group_masks = [||];
    fields = Array.make (Array.length match_keys) 0;
    entry_scratch = [||];
    next_id = 0;
    next_seq = 0;
    total_hits = 0;
    default_hits = 0 }

let name t = t.name
let match_keys t = Array.copy t.match_keys

let entry_order a b =
  match compare b.priority a.priority with 0 -> compare a.seq b.seq | c -> c

let pattern_matches p v =
  match p with
  | Any -> true
  | Eq x -> v = x
  | Mask { value; mask } -> v land mask = value land mask
  | Between (lo, hi) -> v >= lo && v <= hi

(* top level (not a local closure) so matching allocates nothing *)
let rec match_from patterns (fields : int array) i n =
  i >= n
  || (pattern_matches (Array.unsafe_get patterns i) (Array.unsafe_get fields i)
      && match_from patterns fields (i + 1) n)

let entry_matches fields e = match_from e.patterns fields 0 (Array.length fields)

(* Sentinel for "no match" on the hot path: avoids option boxing per
   lookup.  Compared physically; loses to every real entry. *)
let no_entry =
  { id = -1; priority = min_int; seq = max_int; patterns = [||]; action = Const 0; hits = 0 }

let rec first_match fields = function
  | [] -> no_entry
  | e :: rest -> if entry_matches fields e then e else first_match fields rest

let better a b =
  if a == no_entry then b
  else if b == no_entry then a
  else if entry_order a b <= 0 then a
  else b

(* Eq-position bitmask of an exact entry, or -1 if the entry needs a scan. *)
let exact_mask patterns =
  let n = Array.length patterns in
  if n > max_indexable_arity then -1
  else begin
    let rec go i acc =
      if i >= n then acc
      else
        match patterns.(i) with
        | Eq _ -> go (i + 1) (acc lor (1 lsl i))
        | Any -> go (i + 1) acc
        | Mask _ | Between _ -> -1
    in
    go 0 0
  end

(* Deterministic hash of (mask, values at mask positions).  Collisions are
   fine: bucket candidates are re-verified with [entry_matches].  Written as
   top-level accumulator loops so probing allocates nothing. *)
let rec hash_fields (fields : int array) i m h =
  if m = 0 then h
  else
    let h =
      if m land 1 <> 0 then ((h * 0x01000193) + Array.unsafe_get fields i) land max_int else h
    in
    hash_fields fields (i + 1) (m lsr 1) h

let rec hash_patterns patterns i m h =
  if m = 0 then h
  else
    let h =
      if m land 1 <> 0 then
        ((h * 0x01000193)
         + (match patterns.(i) with Eq v -> v | Any | Mask _ | Between _ -> 0))
        land max_int
      else h
    in
    hash_patterns patterns (i + 1) (m lsr 1) h

let index_key_fields mask fields = hash_fields fields 0 mask ((mask * 0x9E3779B1) land max_int)

let index_key_patterns mask patterns =
  hash_patterns patterns 0 mask ((mask * 0x9E3779B1) land max_int)

let rebuild_lookup t =
  Hashtbl.reset t.index;
  t.scan_entries <- [];
  let masks = ref [] in
  (* Iterate worst-first so that consing yields best-first lists. *)
  List.iter
    (fun e ->
      let mask = exact_mask e.patterns in
      if mask < 0 then t.scan_entries <- e :: t.scan_entries
      else begin
        if not (List.mem mask !masks) then masks := mask :: !masks;
        let key = index_key_patterns mask e.patterns in
        let bucket = match Hashtbl.find_opt t.index key with Some b -> b | None -> [] in
        Hashtbl.replace t.index key (e :: bucket)
      end)
    (List.rev t.entries);
  t.group_masks <- Array.of_list !masks

let insert t ?(priority = 0) ~patterns action =
  if Array.length patterns <> Array.length t.match_keys then
    invalid_arg "Table.insert: pattern arity must match the table's match keys";
  let entry =
    { id = t.next_id;
      priority;
      seq = t.next_seq;
      patterns = Array.copy patterns;
      action;
      hits = 0 }
  in
  t.next_id <- t.next_id + 1;
  t.next_seq <- t.next_seq + 1;
  t.entries <- List.sort entry_order (entry :: t.entries);
  rebuild_lookup t;
  Obs.Counter.incr c_inserts;
  entry.id

let remove t id =
  let before = List.length t.entries in
  t.entries <- List.filter (fun e -> e.id <> id) t.entries;
  let removed = List.length t.entries < before in
  if removed then rebuild_lookup t;
  removed

let set_action t id action =
  match List.find_opt (fun e -> e.id = id) t.entries with
  | Some e ->
    e.action <- action;
    true
  | None -> false

let entry_count t = List.length t.entries

let read_fields t ~ctxt =
  let fields = t.fields in
  for i = 0 to Array.length t.match_keys - 1 do
    fields.(i) <- Ctxt.get ctxt t.match_keys.(i)
  done;
  fields

(* Probe one index bucket per wildcard shape, carrying the best candidate
   so far; top level (not a closure) so the hot path allocates nothing. *)
let rec best_indexed t fields i best =
  if i >= Array.length t.group_masks then best
  else begin
    let mask = Array.unsafe_get t.group_masks i in
    let candidate =
      match Hashtbl.find t.index (index_key_fields mask fields) with
      | bucket -> first_match fields bucket
      | exception Not_found -> no_entry
    in
    best_indexed t fields (i + 1) (better best candidate)
  end

(* Best matching entry ([no_entry] if none): index buckets, then the
   Mask/Between scan list, best overall by [entry_order]. *)
let find_entry t fields =
  better (best_indexed t fields 0 no_entry) (first_match fields t.scan_entries)

let run_action action ~ctxt ~now =
  match action with
  | Run vm -> Vm.invoke_result vm ~ctxt ~now
  | Const v -> v
  | Host f -> f ctxt

let lookup t ~ctxt ~now =
  t.total_hits <- t.total_hits + 1;
  Obs.Counter.incr c_lookups;
  (* Fault seam: a forced miss sends the lookup to the default action
     (table-miss storm, DESIGN.md section 12). *)
  let e =
    if Fault.active () && Fault.fire Fault.Table_miss then no_entry
    else find_entry t (read_fields t ~ctxt)
  in
  if e == no_entry then begin
    t.default_hits <- t.default_hits + 1;
    Obs.Counter.incr c_default_hits;
    run_action t.default ~ctxt ~now
  end
  else begin
    e.hits <- e.hits + 1;
    run_action e.action ~ctxt ~now
  end

(* ------------------------------------------------------------------ *)
(* Batched lookup (DESIGN.md section 13)                               *)
(* ------------------------------------------------------------------ *)

let entry_scratch t n =
  if Array.length t.entry_scratch < n then
    t.entry_scratch <-
      Array.make (Stdlib.max 8 (Stdlib.max n (2 * Array.length t.entry_scratch))) no_entry;
  t.entry_scratch

(* Top level (not closures) so the uniform-action probe allocates nothing. *)
let slot_action t (entries : entry array) s =
  let e = entries.(s) in
  if e == no_entry then t.default else e.action

let rec uniform_run_from t entries vm s n =
  s >= n
  ||
  match slot_action t entries s with
  | Run vm' -> vm' == vm && uniform_run_from t entries vm (s + 1) n
  | Const _ | Host _ -> false

(* Batched lookup: match resolution stays per slot (field reads + index
   probes are cheap), and when every slot resolves to the same [Run]
   action — the common case for learned tables, where one installed
   program serves a wildcard entry or the default — the whole batch is
   dispatched through one {!Vm.invoke_batch}, so the program's model
   inference and instruction dispatch amortize across the events.  Mixed
   batches fall back to per-slot action dispatch with traps contained
   into the slot columns; [Host] actions are foreign code and their
   exceptions propagate, as in scalar [lookup].  Hit accounting (table,
   entry, default) is identical to [n] scalar lookups. *)
let lookup_batch t (b : Batch.t) ~now =
  let n = b.Batch.n in
  if n > 0 then begin
    t.total_hits <- t.total_hits + n;
    Obs.Counter.add c_lookups n;
    let entries = entry_scratch t n in
    let faults = Fault.active () in
    for s = 0 to n - 1 do
      let e =
        if faults && Fault.fire Fault.Table_miss then no_entry
        else find_entry t (read_fields t ~ctxt:b.Batch.ctxts.(s))
      in
      entries.(s) <- e;
      if e == no_entry then begin
        t.default_hits <- t.default_hits + 1;
        Obs.Counter.incr c_default_hits
      end
      else e.hits <- e.hits + 1
    done;
    let uniform =
      match slot_action t entries 0 with
      | Run vm -> uniform_run_from t entries vm 1 n
      | Const _ | Host _ -> false
    in
    if uniform then begin
      match slot_action t entries 0 with
      | Run vm -> Vm.invoke_batch vm b ~now
      | Const _ | Host _ -> assert false
    end
    else
      for s = 0 to n - 1 do
        let ctxt = b.Batch.ctxts.(s) in
        match slot_action t entries s with
        | Const v ->
          b.Batch.results.(s) <- v;
          b.Batch.steps.(s) <- 0;
          b.Batch.denied.(s) <- 0;
          b.Batch.traps.(s) <- None
        | Host f ->
          b.Batch.results.(s) <- f ctxt;
          b.Batch.steps.(s) <- 0;
          b.Batch.denied.(s) <- 0;
          b.Batch.traps.(s) <- None
        | Run vm ->
          (match Vm.invoke vm ~ctxt ~now with
           | o ->
             b.Batch.results.(s) <- o.Interp.result;
             b.Batch.steps.(s) <- o.Interp.steps;
             b.Batch.denied.(s) <- o.Interp.privacy_denied;
             b.Batch.traps.(s) <- None
           | exception Interp.Trap trap ->
             b.Batch.results.(s) <- 0;
             b.Batch.steps.(s) <- 0;
             b.Batch.denied.(s) <- 0;
             b.Batch.traps.(s) <- Some trap)
      done
  end

let lookup_entry t ~ctxt =
  let e = find_entry t (read_fields t ~ctxt) in
  if e == no_entry then None else Some e.id

(* Reference lookup: full scan of the sorted entry list.  Kept as the
   differential-test oracle for the indexed path. *)
let lookup_entry_linear t ~ctxt =
  let e = first_match (read_fields t ~ctxt) t.entries in
  if e == no_entry then None else Some e.id
let hits t = t.total_hits
let default_hits t = t.default_hits

let entry_hits t id =
  match List.find_opt (fun e -> e.id = id) t.entries with Some e -> e.hits | None -> 0

let clear t =
  t.entries <- [];
  t.total_hits <- 0;
  t.default_hits <- 0;
  rebuild_lookup t

let pp_pattern fmt = function
  | Any -> Format.fprintf fmt "*"
  | Eq v -> Format.fprintf fmt "=%d" v
  | Mask { value; mask } -> Format.fprintf fmt "&%x=%x" mask value
  | Between (lo, hi) -> Format.fprintf fmt "[%d..%d]" lo hi

let pp fmt t =
  Format.fprintf fmt "table %s (keys=[%s], %d entries, %d hits, %d default)@." t.name
    (String.concat ";" (Array.to_list (Array.map string_of_int t.match_keys)))
    (entry_count t) t.total_hits t.default_hits;
  List.iter
    (fun e ->
      Format.fprintf fmt "  #%d prio=%d hits=%d [%s]@." e.id e.priority e.hits
        (String.concat "; "
           (Array.to_list (Array.map (Format.asprintf "%a" pp_pattern) e.patterns))))
    t.entries
