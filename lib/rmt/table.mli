(** Match/action tables (§3.1).

    A table is installed at a kernel decision point.  It declares which
    execution-context fields it matches on (e.g. key 0 = pid); each entry
    carries one pattern per field, a priority, and an action.  Lookup reads
    the declared fields from the {!Ctxt}, selects the highest-priority
    matching entry (insertion order breaks ties), and runs its action.
    Entries can be inserted and removed at runtime through the control
    plane — "statically encoded in the RMT program or dynamically inserted
    or removed via an API at runtime".

    Lookup is indexed: entries whose patterns are all [Eq]/[Any] are hashed
    on their matched-field tuple (one hash probe per distinct wildcard
    shape), so exact-match tables dispatch in O(1) regardless of entry
    count; [Mask]/[Between] entries fall back to a priority-ordered scan.
    Field reads go through a preallocated scratch buffer, so a lookup
    allocates nothing and performs exactly one {!Ctxt.get} per match key. *)

type pattern =
  | Any
  | Eq of int
  | Mask of { value : int; mask : int }  (** matches when [field land mask = value land mask] *)
  | Between of int * int                 (** inclusive range *)

type action =
  | Run of Vm.t           (** execute a loaded RMT program; result = r0 *)
  | Const of int          (** constant action result *)
  | Host of (Ctxt.t -> int)  (** host-native action (tests, baselines) *)

type entry_id
type t

val create : name:string -> match_keys:int array -> default:action -> t
(** [match_keys] are the ctxt keys this table matches on. *)

val name : t -> string
val match_keys : t -> int array
val insert : t -> ?priority:int -> patterns:pattern array -> action -> entry_id
(** Default priority 0; higher wins.  Raises [Invalid_argument] if the
    pattern arity differs from the table's match keys. *)

val remove : t -> entry_id -> bool
val set_action : t -> entry_id -> action -> bool
val entry_count : t -> int
val lookup : t -> ctxt:Ctxt.t -> now:(unit -> int) -> int
(** Match and run the action; falls back to the default action. *)

val lookup_batch : t -> Batch.t -> now:(unit -> int) -> unit
(** Batched {!lookup} over slots [0 .. b.n - 1]: matching is resolved per
    slot, then — when every slot lands on the same [Run] action (the
    common case for learned tables) — the whole batch runs through one
    {!Vm.invoke_batch}, amortizing model inference and dispatch.  Mixed
    batches dispatch per slot; engine traps are contained into the slot's
    [traps] column either way (exceptions from [Host] actions propagate,
    as in scalar lookup).  Hit accounting is identical to [n] scalar
    lookups. *)

val lookup_entry : t -> ctxt:Ctxt.t -> entry_id option
(** Which entry would fire, without running its action. *)

val lookup_entry_linear : t -> ctxt:Ctxt.t -> entry_id option
(** Reference lookup: full priority-ordered scan, no index.  Same answer as
    {!lookup_entry} by construction; kept as the oracle for the indexed
    path's differential tests. *)

val hits : t -> int
val default_hits : t -> int
(** Lookups that fell through to the default action. *)

val entry_hits : t -> entry_id -> int
val clear : t -> unit
val pattern_matches : pattern -> int -> bool
val pp : Format.formatter -> t -> unit
