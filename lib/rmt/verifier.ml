type limits = {
  max_code_len : int;
  max_vmem : int;
  max_rep_count : int;
  max_steps : int;
  max_const_words : int;
  max_tail_call_depth : int;
}

let default_limits =
  { max_code_len = 4096;
    max_vmem = 1024;
    max_rep_count = 4096;
    max_steps = 1_000_000;
    max_const_words = 1 lsl 20;
    max_tail_call_depth = 32 }

type report = {
  worst_case_steps : int;
  ml_cost : Kml.Model_cost.t;
  uses_privacy : bool;
  model_slots_used : int list;
  helper_ids_used : int list;
  proof : Absint.Proof.t array;
  facts : Absint.fact option array;
}

type violation =
  | Empty_program
  | Code_too_long of int
  | Vmem_too_large of int
  | Const_pool_too_large of int
  | Bad_register of { pc : int; reg : int }
  | Bad_map_slot of { pc : int; slot : int }
  | Bad_model_slot of { pc : int; slot : int }
  | Bad_prog_slot of { pc : int; slot : int }
  | Bad_helper of { pc : int; id : int }
  | Bad_const of { pc : int; id : int }
  | Negative_ctxt_key of { pc : int; key : int }
  | Vmem_out_of_bounds of { pc : int }
  | Backward_jump of { pc : int; target : int }
  | Jump_out_of_range of { pc : int; target : int }
  | Jump_escapes_loop of { pc : int; target : int }
  | Bad_rep of { pc : int; count : int; body_len : int }
  | Falls_off_end of { pc : int }
  | Steps_exceeded of { worst_case : int; allowed : int }
  | Uninitialized_register of { pc : int; reg : int }
  | Missing_privacy_budget of { pc : int; helper : int }
  | Model_arity_mismatch of { pc : int; slot : int; expected : int; got : int }
  | Ml_cost_exceeded of { cost : Kml.Model_cost.t }
  | Ctxt_key_unproven of { pc : int; reg : int }
  | Vmem_index_unproven of { pc : int }
  | Privacy_flow of { pc : int; reg : int }

let pp_violation fmt = function
  | Empty_program -> Format.fprintf fmt "empty program"
  | Code_too_long n -> Format.fprintf fmt "code too long (%d instructions)" n
  | Vmem_too_large n -> Format.fprintf fmt "vector scratchpad too large (%d words)" n
  | Const_pool_too_large n -> Format.fprintf fmt "constant pool too large (%d words)" n
  | Bad_register { pc; reg } -> Format.fprintf fmt "pc %d: register r%d out of range" pc reg
  | Bad_map_slot { pc; slot } -> Format.fprintf fmt "pc %d: undeclared map slot %d" pc slot
  | Bad_model_slot { pc; slot } -> Format.fprintf fmt "pc %d: undeclared model slot %d" pc slot
  | Bad_prog_slot { pc; slot } -> Format.fprintf fmt "pc %d: undeclared program slot %d" pc slot
  | Bad_helper { pc; id } -> Format.fprintf fmt "pc %d: unknown helper %d" pc id
  | Bad_const { pc; id } -> Format.fprintf fmt "pc %d: undeclared constant %d" pc id
  | Negative_ctxt_key { pc; key } -> Format.fprintf fmt "pc %d: negative context key %d" pc key
  | Vmem_out_of_bounds { pc } -> Format.fprintf fmt "pc %d: vector operand out of bounds" pc
  | Backward_jump { pc; target } -> Format.fprintf fmt "pc %d: backward jump to %d" pc target
  | Jump_out_of_range { pc; target } -> Format.fprintf fmt "pc %d: jump to %d out of range" pc target
  | Jump_escapes_loop { pc; target } ->
    Format.fprintf fmt "pc %d: jump to %d escapes enclosing rep body" pc target
  | Bad_rep { pc; count; body_len } ->
    Format.fprintf fmt "pc %d: invalid rep (count=%d, body=%d)" pc count body_len
  | Falls_off_end { pc } -> Format.fprintf fmt "pc %d: control can fall off the end" pc
  | Steps_exceeded { worst_case; allowed } ->
    Format.fprintf fmt "worst-case steps %d exceed budget %d" worst_case allowed
  | Uninitialized_register { pc; reg } ->
    Format.fprintf fmt "pc %d: read of uninitialized register r%d" pc reg
  | Missing_privacy_budget { pc; helper } ->
    Format.fprintf fmt "pc %d: helper %d is privacy-charged but no budget is declared" pc helper
  | Model_arity_mismatch { pc; slot; expected; got } ->
    Format.fprintf fmt "pc %d: model slot %d expects %d features, given %d" pc slot expected got
  | Ml_cost_exceeded { cost } ->
    Format.fprintf fmt "total model cost exceeds hook budget (%a)" Kml.Model_cost.pp cost
  | Ctxt_key_unproven { pc; reg } ->
    Format.fprintf fmt "pc %d: context key in r%d not proven non-negative" pc reg
  | Vmem_index_unproven { pc } ->
    Format.fprintf fmt "pc %d: vector map window not proven in bounds" pc
  | Privacy_flow { pc; reg } ->
    Format.fprintf fmt
      "pc %d: r%d may carry context-derived data into a map without a privacy budget" pc reg

let violation_to_string v = Format.asprintf "%a" pp_violation v

exception Reject of violation

let reject v = raise (Reject v)

(* ------------------------------------------------------------------ *)
(* Uses/defs per instruction under the eBPF calling convention.        *)
(* ------------------------------------------------------------------ *)

let reg_ok r = r >= 0 && r < Insn.n_registers

(* Registers read / written / clobbered by an instruction.  Clobbered
   registers become uninitialized after the instruction. *)
let uses_defs helpers pc (insn : Insn.t) =
  let module I = Insn in
  let caller_saved = [ 1; 2; 3; 4; 5 ] in
  let uses, defs, clobbers =
    match insn with
  | I.Ld_imm (rd, _) -> ([], [ rd ], [])
  | I.Mov (rd, rs) -> ([ rs ], [ rd ], [])
  | I.Alu (_, rd, rs) -> ([ rd; rs ], [ rd ], [])
  | I.Alu_imm (_, rd, _) -> ([ rd ], [ rd ], [])
  | I.Ld_ctxt (rd, rk) -> ([ rk ], [ rd ], [])
  | I.Ld_ctxt_k (rd, _) -> ([], [ rd ], [])
  | I.St_ctxt (_, rs) -> ([ rs ], [], [])
  | I.St_ctxt_r (rk, rs) -> ([ rk; rs ], [], [])
  | I.Map_lookup (rd, _, rk) -> ([ rk ], [ rd ], [])
  | I.Map_update (_, rk, rv) -> ([ rk; rv ], [], [])
  | I.Map_delete (_, rk) -> ([ rk ], [], [])
  | I.Ring_push (_, rv) -> ([ rv ], [], [])
  | I.Jmp _ -> ([], [], [])
  | I.Jcond (_, ra, rb, _) -> ([ ra; rb ], [], [])
  | I.Jcond_imm (_, ra, _, _) -> ([ ra ], [], [])
  | I.Rep _ -> ([], [], [])
  | I.Call id ->
    let arity = if Helper.mem helpers id then Helper.arity helpers id else 0 in
    (List.init arity (fun i -> i + 1), [ 0 ], caller_saved)
  | I.Call_ml _ -> ([], [ 0 ], caller_saved)
  | I.Vec_ld_ctxt _ -> ([], [], [])
  | I.Vec_ld_map (_, _, rk, _) -> ([ rk ], [], [])
  | I.Vec_st_reg (_, rs) -> ([ rs ], [], [])
  | I.Vec_ld_reg (rd, _) -> ([], [ rd ], [])
  | I.Mat_mul _ | I.Vec_add_const _ | I.Vec_relu _ | I.Vec_i2f _ -> ([], [], [])
  | I.Vec_argmax (rd, _, _) -> ([], [ rd ], [])
    | I.Tail_call _ -> ([], [], [])
    | I.Exit -> ([ 0 ], [], [])
  in
  List.iter (fun r -> if not (reg_ok r) then reject (Bad_register { pc; reg = r })) (uses @ defs);
  (uses, defs, clobbers)

(* ------------------------------------------------------------------ *)
(* Structural checks per instruction.                                  *)
(* ------------------------------------------------------------------ *)

let check_operands limits ~helpers (prog : Program.t) =
  let module I = Insn in
  let n_maps = Array.length prog.map_specs in
  let n_models = Array.length prog.model_arity in
  let n_consts = Array.length prog.consts in
  let vmem = prog.vmem_size in
  let vrange pc off len =
    if off < 0 || len < 0 || off + len > vmem then reject (Vmem_out_of_bounds { pc })
  in
  Array.iteri
    (fun pc insn ->
      match insn with
      | I.Ld_imm _ | I.Mov _ | I.Alu _ | I.Alu_imm _ | I.Ld_ctxt _ | I.Jmp _ | I.Jcond _
      | I.Jcond_imm _ | I.Exit ->
        ()
      | I.Ld_ctxt_k (_, key) | I.St_ctxt (key, _) ->
        if key < 0 then reject (Negative_ctxt_key { pc; key })
      | I.St_ctxt_r _ -> ()
      | I.Map_lookup (_, slot, _) | I.Map_update (slot, _, _) | I.Map_delete (slot, _)
      | I.Ring_push (slot, _) ->
        if slot < 0 || slot >= n_maps then reject (Bad_map_slot { pc; slot })
      | I.Rep (count, body_len) ->
        if count < 1 || count > limits.max_rep_count || body_len < 1 then
          reject (Bad_rep { pc; count; body_len });
        if pc + 1 + body_len > Array.length prog.code then
          reject (Bad_rep { pc; count; body_len })
      | I.Call id ->
        if not (Helper.mem helpers id) then reject (Bad_helper { pc; id })
      | I.Call_ml (slot, off, len) ->
        if slot < 0 || slot >= n_models then reject (Bad_model_slot { pc; slot });
        vrange pc off len;
        if prog.model_arity.(slot) <> len then
          reject
            (Model_arity_mismatch { pc; slot; expected = prog.model_arity.(slot); got = len })
      | I.Vec_ld_ctxt (dst, key, len) ->
        if key < 0 then reject (Negative_ctxt_key { pc; key });
        vrange pc dst len
      | I.Vec_ld_map (dst, slot, _, len) ->
        if slot < 0 || slot >= n_maps then reject (Bad_map_slot { pc; slot });
        vrange pc dst len
      | I.Vec_st_reg (off, _) | I.Vec_ld_reg (_, off) -> vrange pc off 1
      | I.Mat_mul (dst, cid, src) ->
        if cid < 0 || cid >= n_consts then reject (Bad_const { pc; id = cid });
        let c = prog.consts.(cid) in
        vrange pc dst c.Program.rows;
        vrange pc src c.Program.cols
      | I.Vec_add_const (dst, cid) ->
        if cid < 0 || cid >= n_consts then reject (Bad_const { pc; id = cid });
        let c = prog.consts.(cid) in
        if c.Program.rows <> 1 then reject (Bad_const { pc; id = cid });
        vrange pc dst c.Program.cols
      | I.Vec_relu (off, len) | I.Vec_argmax (_, off, len) | I.Vec_i2f (off, len) ->
        vrange pc off len
      | I.Tail_call slot ->
        if slot < 0 || slot >= prog.n_prog_slots then reject (Bad_prog_slot { pc; slot }))
    prog.code

(* ------------------------------------------------------------------ *)
(* Loop nesting: innermost enclosing Rep body end per pc, and the      *)
(* multiplicity (product of enclosing trip counts) per pc.             *)
(* ------------------------------------------------------------------ *)

let loop_structure limits (code : Insn.t array) =
  let n = Array.length code in
  let body_end = Array.make n (n - 1) in
  (* default: top level — may branch anywhere up to the last insn *)
  let weight = Array.make n 1 in
  let rec scan pc limit mult =
    (* annotate instructions in [pc, limit] with their innermost body end
       and loop multiplicity; recurse into Rep bodies *)
    if pc > limit then ()
    else begin
      body_end.(pc) <- limit;
      weight.(pc) <- mult;
      match code.(pc) with
      | Insn.Rep (count, body_len) ->
        let b_end = pc + body_len in
        if b_end > limit then reject (Bad_rep { pc; count; body_len });
        let inner_mult = mult * count in
        if inner_mult > limits.max_steps then
          reject (Steps_exceeded { worst_case = inner_mult; allowed = limits.max_steps });
        scan (pc + 1) b_end inner_mult;
        scan (b_end + 1) limit mult
      | _ -> scan (pc + 1) limit mult
    end
  in
  scan 0 (n - 1) 1;
  (body_end, weight)

(* ------------------------------------------------------------------ *)
(* Control flow and dataflow.                                          *)
(* ------------------------------------------------------------------ *)

let successors (code : Insn.t array) body_end pc =
  let n = Array.length code in
  let module I = Insn in
  let check_target target =
    if target <= pc then reject (Backward_jump { pc; target });
    if target >= n then reject (Jump_out_of_range { pc; target });
    (* A branch may leave its innermost rep body only to the instruction
       right after the body end ("continue"); anything further escapes. *)
    if target > body_end.(pc) + 1 then reject (Jump_escapes_loop { pc; target });
    target
  in
  let fallthrough () =
    if pc + 1 >= n then reject (Falls_off_end { pc });
    pc + 1
  in
  match code.(pc) with
  | I.Exit | I.Tail_call _ -> []
  | I.Jmp off -> [ check_target (pc + 1 + off) ]
  | I.Jcond (_, _, _, off) | I.Jcond_imm (_, _, _, off) ->
    let t = check_target (pc + 1 + off) in
    let ft = fallthrough () in
    if t = ft then [ t ] else [ ft; t ]
  | I.Rep (_, _) -> [ fallthrough () ]
  | I.Ld_imm _ | I.Mov _ | I.Alu _ | I.Alu_imm _ | I.Ld_ctxt _ | I.Ld_ctxt_k _ | I.St_ctxt _
  | I.St_ctxt_r _ | I.Map_lookup _ | I.Map_update _ | I.Map_delete _ | I.Ring_push _ | I.Call _
  | I.Call_ml _ | I.Vec_ld_ctxt _ | I.Vec_ld_map _ | I.Vec_st_reg _ | I.Vec_ld_reg _ | I.Mat_mul _
  | I.Vec_add_const _ | I.Vec_relu _ | I.Vec_argmax _ | I.Vec_i2f _ ->
    [ fallthrough () ]

(* A Rep body's exit falls through to the instruction after the body; since
   bodies are contiguous and control inside the body cannot escape, reaching
   body_end+1 happens exactly when the body's last reachable instruction
   falls through or a branch targets body_end+1.  The plain successor
   relation above already captures both. *)

let dataflow helpers (code : Insn.t array) body_end =
  let n = Array.length code in
  let bottom = -1 (* unreached marker *) in
  let in_state = Array.make n bottom in
  in_state.(0) <- 0;
  for pc = 0 to n - 1 do
    let st = in_state.(pc) in
    if st <> bottom then begin
      let uses, defs, clobbers = uses_defs helpers pc code.(pc) in
      List.iter
        (fun r ->
          if st land (1 lsl r) = 0 then reject (Uninitialized_register { pc; reg = r }))
        uses;
      let out = List.fold_left (fun acc r -> acc lor (1 lsl r)) st defs in
      let out = List.fold_left (fun acc r -> acc land lnot (1 lsl r)) out clobbers in
      (* defs win over clobbers (Call defines r0 after clobbering) *)
      let out = List.fold_left (fun acc r -> acc lor (1 lsl r)) out defs in
      List.iter
        (fun succ ->
          if in_state.(succ) = bottom then in_state.(succ) <- out
          else in_state.(succ) <- in_state.(succ) land out)
        (successors code body_end pc)
    end
  done

let sum_saturating a b =
  let s = a + b in
  if s < a then max_int else s

(* ------------------------------------------------------------------ *)
(* Main entry points.                                                  *)
(* ------------------------------------------------------------------ *)

let run_checks ~limits ~budget ~strict ~helpers ~model_costs (prog : Program.t) =
  let n = Array.length prog.code in
  if n = 0 then reject Empty_program;
  if n > limits.max_code_len then reject (Code_too_long n);
  if prog.vmem_size < 0 || prog.vmem_size > limits.max_vmem then
    reject (Vmem_too_large prog.vmem_size);
  let const_words =
    Array.fold_left (fun acc c -> acc + Array.length c.Program.data) 0 prog.consts
  in
  if const_words > limits.max_const_words then reject (Const_pool_too_large const_words);
  Array.iter
    (fun (c : Program.const) ->
      if Array.length c.data <> c.rows * c.cols then
        invalid_arg "Verifier: malformed constant (data length <> rows * cols)")
    prog.consts;
  check_operands limits ~helpers prog;
  let body_end, weight = loop_structure limits prog.code in
  (* Validate all successor edges eagerly (also catches fall-off / backward
     jumps on unreachable code, which we reject as malformed). *)
  Array.iteri (fun pc _ -> ignore (successors prog.code body_end pc)) prog.code;
  dataflow helpers prog.code body_end;
  (* Abstract interpretation: register intervals + taint.  Runs after the
     structural passes (it assumes well-formed control flow).  The taint
     violation is always enforced — it is an information-flow property the
     per-call-site privacy check cannot see; the bounds violations only
     reject under [strict] since unproven accesses still have total runtime
     semantics (they just keep their guards). *)
  let ai = Absint.analyze ~helpers prog in
  List.iter
    (fun issue ->
      match issue with
      | Absint.Tainted_sink { pc; reg } -> reject (Privacy_flow { pc; reg })
      | Absint.Unproven_ctxt_key { pc; reg } ->
        if strict then reject (Ctxt_key_unproven { pc; reg })
      | Absint.Unproven_map_window { pc } ->
        if strict then reject (Vmem_index_unproven { pc }))
    ai.Absint.issues;
  (* Worst-case dynamic steps: every instruction weighted by its loop
     multiplicity — restricted to instructions the abstract interpreter
     found reachable (infeasible branches make whole regions dead, so this
     is tighter than the purely structural sum and still an upper bound). *)
  let worst_case_steps = ref 0 in
  Array.iteri
    (fun pc w ->
      if Absint.Proof.reachable ai.Absint.proofs.(pc) then
        worst_case_steps := sum_saturating !worst_case_steps w)
    weight;
  let worst_case_steps = !worst_case_steps in
  if worst_case_steps > limits.max_steps then
    reject (Steps_exceeded { worst_case = worst_case_steps; allowed = limits.max_steps });
  (* Capability + ML admission. *)
  let uses_privacy = ref false in
  let model_slots = ref [] and helper_ids = ref [] in
  let ml_cost = ref Kml.Model_cost.zero in
  Array.iteri
    (fun pc insn ->
      match insn with
      | Insn.Call id ->
        if not (List.mem id !helper_ids) then helper_ids := id :: !helper_ids;
        if Helper.privacy_cost helpers id > 0 then begin
          uses_privacy := true;
          if Program.privacy_budget prog = None then
            reject (Missing_privacy_budget { pc; helper = id })
        end
      | Insn.Call_ml (slot, _, _) ->
        if not (List.mem slot !model_slots) then model_slots := slot :: !model_slots;
        if slot < Array.length model_costs then begin
          let c = model_costs.(slot) in
          let w = weight.(pc) in
          ml_cost :=
            Kml.Model_cost.add !ml_cost
              { Kml.Model_cost.macs = w * c.Kml.Model_cost.macs;
                comparisons = w * c.Kml.Model_cost.comparisons;
                memory_words = c.Kml.Model_cost.memory_words }
        end
      | _ -> ())
    prog.code;
  if not (Kml.Model_cost.within !ml_cost budget) then
    reject (Ml_cost_exceeded { cost = !ml_cost });
  { worst_case_steps;
    ml_cost = !ml_cost;
    uses_privacy = !uses_privacy;
    model_slots_used = List.sort compare !model_slots;
    helper_ids_used = List.sort compare !helper_ids;
    proof = ai.Absint.proofs;
    facts = ai.Absint.facts }

let check ?(limits = default_limits) ?(budget = Kml.Model_cost.default_budget)
    ?(strict = false) ~helpers ~model_costs prog =
  match run_checks ~limits ~budget ~strict ~helpers ~model_costs prog with
  | report -> Ok report
  | exception Reject v -> Error v

let check_structure_only ?(limits = default_limits) ?strict ~helpers prog =
  let model_costs = Array.map (fun _ -> Kml.Model_cost.zero) prog.Program.model_arity in
  check ~limits ~budget:Kml.Model_cost.default_budget ?strict ~helpers ~model_costs prog
