(** RMT program verifier (§3.3).

    [check] performs the static admission analysis the paper assigns to the
    in-kernel verifier, in order:

    + {b structure} — code/scratchpad/constant-pool size limits, register
      and slot indices in range, vector operands within the scratchpad;
    + {b control flow} — branch targets strictly forward and inside the
      program; [Rep] bodies properly nested with constant trip counts;
      no path can fall off the end of the code; a worst-case dynamic
      instruction count (every instruction weighted by the product of its
      enclosing loop counts) below the step budget — this is the paper's
      "bounded execution" guarantee;
    + {b dataflow} — every register read is preceded by a write on all
      paths (helper and model calls clobber r1–r5 and define r0, the eBPF
      convention); [Exit] requires a defined r0;
    + {b capabilities} — calling a privacy-charged helper requires a
      declared [Privacy_budget]; hooks that treat the result as a resource
      request additionally require [Guarded] and [Rate_limited]
      (enforced by {!Control} at attach time using {!report});
    + {b ML admission} — with models bound, the total per-invocation model
      cost (weighted by loop multiplicity) must fit the hook's
      {!Kml.Model_cost.budget}.

    A program accepted by [check] cannot trap in {!Interp} or {!Jit}: all
    arithmetic is total (division by zero yields 0), all memory operands
    were bounds-checked statically, and execution length is bounded. *)

type limits = {
  max_code_len : int;
  max_vmem : int;
  max_rep_count : int;
  max_steps : int;            (** worst-case dynamic instructions *)
  max_const_words : int;
  max_tail_call_depth : int;
}

val default_limits : limits

type report = {
  worst_case_steps : int;
  ml_cost : Kml.Model_cost.t;  (** loop-weighted total per invocation *)
  uses_privacy : bool;
  model_slots_used : int list;
  helper_ids_used : int list;
  proof : Absint.Proof.t array;
      (** per-pc facts from {!Absint.analyze} — {!Interp} and {!Jit}
          consult these to elide runtime bounds/taint guards on proven
          instructions (see {!Loaded.link}) *)
  facts : Absint.fact option array;
      (** per-pc interval facts from the same analysis — the JIT
          specializes code against these (constant folding, strength
          reduction, dead-arm elimination; see {!Specialize}), and
          {!Resource.of_report} derives the compile-time resource
          report from them *)
}

type violation =
  | Empty_program
  | Code_too_long of int
  | Vmem_too_large of int
  | Const_pool_too_large of int
  | Bad_register of { pc : int; reg : int }
  | Bad_map_slot of { pc : int; slot : int }
  | Bad_model_slot of { pc : int; slot : int }
  | Bad_prog_slot of { pc : int; slot : int }
  | Bad_helper of { pc : int; id : int }
  | Bad_const of { pc : int; id : int }
  | Negative_ctxt_key of { pc : int; key : int }
  | Vmem_out_of_bounds of { pc : int }
  | Backward_jump of { pc : int; target : int }
  | Jump_out_of_range of { pc : int; target : int }
  | Jump_escapes_loop of { pc : int; target : int }
  | Bad_rep of { pc : int; count : int; body_len : int }
  | Falls_off_end of { pc : int }
  | Steps_exceeded of { worst_case : int; allowed : int }
  | Uninitialized_register of { pc : int; reg : int }
  | Missing_privacy_budget of { pc : int; helper : int }
  | Model_arity_mismatch of { pc : int; slot : int; expected : int; got : int }
  | Ml_cost_exceeded of { cost : Kml.Model_cost.t }
  | Ctxt_key_unproven of { pc : int; reg : int }
      (** strict mode: dynamic context key not proven non-negative *)
  | Vmem_index_unproven of { pc : int }
      (** strict mode: [Vec_ld_map] window not proven within the map *)
  | Privacy_flow of { pc : int; reg : int }
      (** context-derived (tainted) data reaches a map/ring sink in a
          program with no [Privacy_budget] — always enforced *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

val check :
  ?limits:limits ->
  ?budget:Kml.Model_cost.budget ->
  ?strict:bool ->
  helpers:Helper.t ->
  model_costs:Kml.Model_cost.t array ->
  Program.t ->
  (report, violation) result
(** [model_costs] gives the cost of the model bound to each model slot
    (same order as [Program.model_arity]); pass measured costs from
    {!Model_store} at load time.

    [strict] (default [false]) additionally requires every dynamic
    context key and vector map window to be statically proven in bounds
    ([Ctxt_key_unproven] / [Vmem_index_unproven]); the default keeps
    those accesses admissible under their (total) runtime guards.
    [Privacy_flow] is enforced regardless of [strict]. *)

val check_structure_only :
  ?limits:limits -> ?strict:bool -> helpers:Helper.t -> Program.t -> (report, violation) result
(** Structure, control-flow and dataflow checks with model slots assumed
    zero-cost — usable before models are bound. *)
