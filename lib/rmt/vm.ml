type engine = Interpreted | Jit_compiled

type t = {
  loaded : Loaded.t;
  mutable engine : engine;
  mutable compiled : Jit.compiled option;
  (* The limiter needs a creation timestamp, which is only known at the
     first invocation; hence the deferred initialization below. *)
  mutable limiter_state : Rate_limit.t option;
  mutable limiter_initialized : bool;
}

let create ?(engine = Jit_compiled) loaded =
  { loaded;
    engine;
    compiled = (match engine with Jit_compiled -> Some (Jit.compile loaded) | Interpreted -> None);
    limiter_state = None;
    limiter_initialized = false }

let engine t = t.engine

let set_engine t e =
  t.engine <- e;
  match e with
  | Jit_compiled -> if t.compiled = None then t.compiled <- Some (Jit.compile t.loaded)
  | Interpreted -> ()

let loaded t = t.loaded

let limiter_for t ~now =
  if not t.limiter_initialized then begin
    t.limiter_initialized <- true;
    t.limiter_state <-
      (match Program.rate_limited t.loaded.Loaded.prog with
       | Some (tokens_per_sec, burst) ->
         Some (Rate_limit.create ~tokens_per_sec ~burst ~now:(now ()))
       | None -> None)
  end;
  t.limiter_state

let compiled_for t =
  match t.compiled with
  | Some c -> c
  | None ->
    let c = Jit.compile t.loaded in
    t.compiled <- Some c;
    c

let invoke t ~ctxt ~now =
  let outcome =
    match t.engine with
    | Interpreted -> Interp.run t.loaded ~ctxt ~now
    | Jit_compiled -> Jit.run (compiled_for t) ~ctxt ~now
  in
  match limiter_for t ~now with
  | None -> outcome
  | Some bucket ->
    let granted = Rate_limit.grant bucket ~now:(now ()) ~request:outcome.Interp.result in
    { outcome with Interp.result = granted }

let invoke_result t ~ctxt ~now =
  let result =
    match t.engine with
    | Interpreted -> (Interp.run t.loaded ~ctxt ~now).Interp.result
    | Jit_compiled -> Jit.exec (compiled_for t) ~ctxt ~now
  in
  match limiter_for t ~now with
  | None -> result
  | Some bucket -> Rate_limit.grant bucket ~now:(now ()) ~request:result

let jit_units t =
  match t.compiled with Some c -> Jit.compiled_units c | None -> 0

let invocations t = t.loaded.Loaded.runs
let total_steps t = t.loaded.Loaded.total_steps

let throttled_units t =
  match t.limiter_state with Some bucket -> Rate_limit.throttled bucket | None -> 0

let guardrail_violations t =
  match t.loaded.Loaded.guardrail with Some g -> Guardrail.violations g | None -> 0

let privacy_remaining_milli t =
  match t.loaded.Loaded.privacy with
  | Some acct -> Some (Privacy.remaining_milli acct)
  | None -> None
