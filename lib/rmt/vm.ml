type engine = Interpreted | Jit_compiled

(* Datapath telemetry (DESIGN.md section 11): one counter bump, one
   histogram observation and one trace event per invocation, all behind
   [Obs.enabled] and all allocation-free — the steady-state zero-alloc
   contract of the JIT fast path is Gc-verified with telemetry on. *)
let c_invocations = Obs.Counter.make "rmt.vm.invocations"
let h_steps = Obs.Histo.make "rmt.vm.steps"

type t = {
  loaded : Loaded.t;
  mutable engine : engine;
  mutable compiled : Jit.compiled option;
  (* The limiter needs a creation timestamp, which is only known at the
     first invocation; hence the deferred initialization below. *)
  mutable limiter_state : Rate_limit.t option;
  mutable limiter_initialized : bool;
  elided_sites : int; (* static count of proof-elided guard sites *)
}

let count_elided_sites (loaded : Loaded.t) =
  Array.fold_left
    (fun acc p ->
      if Absint.Proof.key_dense p || Absint.Proof.key_nonneg p
         || Absint.Proof.window_in_bounds p
      then acc + 1
      else acc)
    0 loaded.Loaded.proofs

let create ?(engine = Jit_compiled) loaded =
  { loaded;
    engine;
    compiled = (match engine with Jit_compiled -> Some (Jit.compile loaded) | Interpreted -> None);
    limiter_state = None;
    limiter_initialized = false;
    elided_sites = count_elided_sites loaded }

let engine t = t.engine

let set_engine t e =
  t.engine <- e;
  match e with
  | Jit_compiled -> if t.compiled = None then t.compiled <- Some (Jit.compile t.loaded)
  | Interpreted -> ()

let loaded t = t.loaded
let elided_guard_sites t = t.elided_sites

let limiter_for t ~now =
  if not t.limiter_initialized then begin
    t.limiter_initialized <- true;
    t.limiter_state <-
      (match Program.rate_limited t.loaded.Loaded.prog with
       | Some (tokens_per_sec, burst) ->
         Some (Rate_limit.create ~tokens_per_sec ~burst ~now:(now ()))
       | None -> None)
  end;
  t.limiter_state

let compiled_for t =
  match t.compiled with
  | Some c -> c
  | None ->
    let c = Jit.compile t.loaded in
    t.compiled <- Some c;
    c

let engine_code = function Interpreted -> 0 | Jit_compiled -> 1

(* One fixed-size flight-recorder event per invocation.  The guardrail
   clamps inside the engines, so its contribution is detected as a
   violation-count delta across the run; throttling and privacy denials
   are visible directly. *)
let record t ~violations_before ~steps ~result ~throttled ~denied =
  Obs.Counter.incr c_invocations;
  Obs.Histo.observe h_steps steps;
  let flags =
    (if throttled then Obs.Trace.flag_throttled else 0)
    lor
    (if denied > 0 then Obs.Trace.flag_privacy_denied else 0)
    lor
    match t.loaded.Loaded.guardrail with
    | Some g when Guardrail.violations g > violations_before -> Obs.Trace.flag_guardrail
    | Some _ | None -> 0
  in
  Obs.Trace.emit
    ~hook:(Obs.Trace.current_hook ())
    ~uid:t.loaded.Loaded.uid
    ~engine:(engine_code t.engine)
    ~steps ~elided:t.elided_sites ~result ~flags

let guardrail_violations_now t =
  match t.loaded.Loaded.guardrail with Some g -> Guardrail.violations g | None -> 0

let invoke t ~ctxt ~now =
  let violations_before = guardrail_violations_now t in
  let outcome =
    match t.engine with
    | Interpreted -> Interp.run t.loaded ~ctxt ~now
    | Jit_compiled -> Jit.run (compiled_for t) ~ctxt ~now
  in
  let outcome, throttled =
    match limiter_for t ~now with
    | None -> (outcome, false)
    | Some bucket ->
      let granted = Rate_limit.grant bucket ~now:(now ()) ~request:outcome.Interp.result in
      ({ outcome with Interp.result = granted }, granted < outcome.Interp.result)
  in
  if Obs.enabled () then
    record t ~violations_before ~steps:outcome.Interp.steps ~result:outcome.Interp.result
      ~throttled ~denied:outcome.Interp.privacy_denied;
  outcome

let invoke_result t ~ctxt ~now =
  let violations_before = guardrail_violations_now t in
  let result, steps, denied =
    match t.engine with
    | Interpreted ->
      let o = Interp.run t.loaded ~ctxt ~now in
      (o.Interp.result, o.Interp.steps, o.Interp.privacy_denied)
    | Jit_compiled ->
      let c = compiled_for t in
      let result = Jit.exec c ~ctxt ~now in
      (result, Jit.last_steps c, Jit.last_privacy_denied c)
  in
  let result, throttled =
    match limiter_for t ~now with
    | None -> (result, false)
    | Some bucket ->
      let granted = Rate_limit.grant bucket ~now:(now ()) ~request:result in
      (granted, granted < result)
  in
  if Obs.enabled () then record t ~violations_before ~steps ~result ~throttled ~denied;
  result

let jit_units t =
  match t.compiled with Some c -> Jit.compiled_units c | None -> 0

let invocations t = t.loaded.Loaded.runs
let total_steps t = t.loaded.Loaded.total_steps

let throttled_units t =
  match t.limiter_state with Some bucket -> Rate_limit.throttled bucket | None -> 0

let guardrail_violations t =
  match t.loaded.Loaded.guardrail with Some g -> Guardrail.violations g | None -> 0

let privacy_remaining_milli t =
  match t.loaded.Loaded.privacy with
  | Some acct -> Some (Privacy.remaining_milli acct)
  | None -> None
