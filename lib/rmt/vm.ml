type engine = Interpreted | Jit_compiled

(* Datapath telemetry (DESIGN.md section 11): one counter bump, one
   histogram observation and one trace event per invocation, all behind
   [Obs.enabled] and all allocation-free — the steady-state zero-alloc
   contract of the JIT fast path is Gc-verified with telemetry on. *)
let c_invocations = Obs.Counter.make "rmt.vm.invocations"
let h_steps = Obs.Histo.make "rmt.vm.steps"
let c_traps = Obs.Counter.make "rmt.vm.traps"

(* Canary lifecycle totals (DESIGN.md section 12). *)
let c_shadow_runs = Obs.Counter.make "rmt.canary.shadow_runs"
let c_divergences = Obs.Counter.make "rmt.canary.divergences"
let c_promoted = Obs.Counter.make "rmt.canary.promoted"
let c_rolled_back = Obs.Counter.make "rmt.canary.rolled_back"
let c_grace_rollbacks = Obs.Counter.make "rmt.canary.grace_rollbacks"

(* Candidate slot of the two-slot install protocol: shadows the incumbent
   for [remaining] invocations, counting divergences (trap, fresh
   guardrail violation, or result mismatch). *)
type canary = {
  c_loaded : Loaded.t;
  mutable c_compiled : Jit.compiled option;
  mutable c_remaining : int;
  mutable c_divergences : int;
  c_max_divergences : int;
  c_grace : int;
}

(* Displaced incumbent, kept for [g_remaining] invocations after a
   promotion so a trap or breaker-open can roll the promotion back. *)
type grace = {
  g_loaded : Loaded.t;
  g_compiled : Jit.compiled option;
  mutable g_remaining : int;
}

type t = {
  mutable loaded : Loaded.t;
  mutable engine : engine;
  mutable compiled : Jit.compiled option;
  (* The limiter needs a creation timestamp, which is only known at the
     first invocation; hence the deferred initialization below. *)
  mutable limiter_state : Rate_limit.t option;
  mutable limiter_initialized : bool;
  mutable elided_sites : int; (* static count of proof-elided guard sites *)
  mutable traps : int;
  mutable canary : canary option;
  mutable grace : grace option;
}

let count_elided_sites (loaded : Loaded.t) =
  Array.fold_left
    (fun acc p ->
      if Absint.Proof.key_dense p || Absint.Proof.key_nonneg p
         || Absint.Proof.window_in_bounds p
      then acc + 1
      else acc)
    0 loaded.Loaded.proofs

let create ?(engine = Jit_compiled) loaded =
  { loaded;
    engine;
    compiled = (match engine with Jit_compiled -> Some (Jit.compile loaded) | Interpreted -> None);
    limiter_state = None;
    limiter_initialized = false;
    elided_sites = count_elided_sites loaded;
    traps = 0;
    canary = None;
    grace = None }

let engine t = t.engine

let set_engine t e =
  t.engine <- e;
  match e with
  | Jit_compiled -> if t.compiled = None then t.compiled <- Some (Jit.compile t.loaded)
  | Interpreted -> ()

let loaded t = t.loaded
let elided_guard_sites t = t.elided_sites
let traps t = t.traps

let limiter_for t ~now =
  if not t.limiter_initialized then begin
    t.limiter_initialized <- true;
    t.limiter_state <-
      (match Program.rate_limited t.loaded.Loaded.prog with
       | Some (tokens_per_sec, burst) ->
         Some (Rate_limit.create ~tokens_per_sec ~burst ~now:(now ()))
       | None -> None)
  end;
  t.limiter_state

let compiled_for t =
  match t.compiled with
  | Some c -> c
  | None ->
    let c = Jit.compile t.loaded in
    t.compiled <- Some c;
    c

(* Point [t] at a different loaded instance in place.  In-place matters:
   table entries hold direct [Run vm] references (Table.action), so
   promotion and rollback must be visible through the existing Vm without
   touching any table. *)
let adopt t ?compiled loaded =
  t.loaded <- loaded;
  t.compiled <-
    (match t.engine with
     | Interpreted -> None
     | Jit_compiled ->
       (match compiled with Some _ as c -> c | None -> Some (Jit.compile loaded)));
  t.limiter_state <- None;
  t.limiter_initialized <- false;
  t.elided_sites <- count_elided_sites loaded

let swap t loaded =
  t.canary <- None;
  t.grace <- None;
  adopt t loaded

let rollback t =
  match t.grace with
  | None -> false
  | Some g ->
    adopt t ?compiled:g.g_compiled g.g_loaded;
    t.grace <- None;
    Obs.Counter.incr c_grace_rollbacks;
    true

let engine_code = function Interpreted -> 0 | Jit_compiled -> 1

(* One fixed-size flight-recorder event per invocation.  The guardrail
   clamps inside the engines, so its contribution is detected as a
   violation-count delta across the run; throttling and privacy denials
   are visible directly. *)
let record t ~violations_before ~steps ~result ~throttled ~denied =
  Obs.Counter.incr c_invocations;
  Obs.Histo.observe h_steps steps;
  let flags =
    (if throttled then Obs.Trace.flag_throttled else 0)
    lor
    (if denied > 0 then Obs.Trace.flag_privacy_denied else 0)
    lor
    match t.loaded.Loaded.guardrail with
    | Some g when Guardrail.violations g > violations_before -> Obs.Trace.flag_guardrail
    | Some _ | None -> 0
  in
  Obs.Trace.emit
    ~hook:(Obs.Trace.current_hook ())
    ~uid:t.loaded.Loaded.uid
    ~engine:(engine_code t.engine)
    ~steps ~elided:t.elided_sites ~result ~flags

let guardrail_violations_now t =
  match t.loaded.Loaded.guardrail with Some g -> Guardrail.violations g | None -> 0

(* ------------------------------------------------------------------ *)
(* Trap containment (DESIGN.md section 12)                              *)
(* ------------------------------------------------------------------ *)

(* Exception normalization lives in {!Interp.trap_of_exn}; the policy on
   a recognized trap is here.  Accounting — trap counters plus rolling
   back a promotion still inside its grace window, so the incumbent
   heuristic-vetted program serves the next invocation — is shared
   between the raising scalar path and the per-slot containing batch
   path. *)
let record_trap t =
  t.traps <- t.traps + 1;
  Obs.Counter.incr c_traps;
  match t.grace with Some _ -> ignore (rollback t : bool) | None -> ()

(* Called on the cold path, with the engine already unwound. *)
let contain_trap t exn =
  match Interp.trap_of_exn exn with
  | None -> raise exn
  | Some trap ->
    record_trap t;
    raise (Interp.Trap trap)

(* ------------------------------------------------------------------ *)
(* Canary shadowing (DESIGN.md section 12)                              *)
(* ------------------------------------------------------------------ *)

let canary_compiled c =
  match c.c_compiled with
  | Some jc -> jc
  | None ->
    let jc = Jit.compile c.c_loaded in
    c.c_compiled <- Some jc;
    jc

let promote t c =
  let prev_loaded = t.loaded and prev_compiled = t.compiled in
  adopt t
    ?compiled:(match t.engine with Jit_compiled -> Some (canary_compiled c) | Interpreted -> None)
    c.c_loaded;
  t.canary <- None;
  t.grace <-
    (if c.c_grace > 0 then
       Some { g_loaded = prev_loaded; g_compiled = prev_compiled; g_remaining = c.c_grace }
     else None);
  Obs.Counter.incr c_promoted

(* One shadow step per live invocation: run the candidate on a copy of the
   context (its maps and vmem are its own, so the live datapath state is
   untouched), compare against the incumbent's result, and promote or roll
   back when the canary budget is spent. *)
let shadow_step t c ~ctxt ~now incumbent_result =
  Obs.Counter.incr c_shadow_runs;
  let shadow_ctxt = Ctxt.copy ctxt in
  let violations_before =
    match c.c_loaded.Loaded.guardrail with Some g -> Guardrail.violations g | None -> 0
  in
  let candidate_result =
    match t.engine with
    | Interpreted -> (Interp.run c.c_loaded ~ctxt:shadow_ctxt ~now).Interp.result
    | Jit_compiled -> Jit.exec (canary_compiled c) ~ctxt:shadow_ctxt ~now
  in
  match candidate_result with
  | result ->
    let violated =
      match c.c_loaded.Loaded.guardrail with
      | Some g -> Guardrail.violations g > violations_before
      | None -> false
    in
    if violated || result <> incumbent_result then begin
      c.c_divergences <- c.c_divergences + 1;
      Obs.Counter.incr c_divergences
    end;
    c.c_remaining <- c.c_remaining - 1;
    if c.c_remaining <= 0 then
      if c.c_divergences <= c.c_max_divergences then promote t c
      else begin
        t.canary <- None;
        Obs.Counter.incr c_rolled_back
      end
  | exception exn ->
    (match Interp.trap_of_exn exn with
     | None -> raise exn
     | Some _ ->
       (* A trapping candidate is disqualified outright. *)
       t.canary <- None;
       Obs.Counter.incr c_divergences;
       Obs.Counter.incr c_rolled_back)

let tick_grace t g =
  g.g_remaining <- g.g_remaining - 1;
  if g.g_remaining <= 0 then t.grace <- None

(* Cold path hung off the hot invokes below: two option loads when idle. *)
let staging_step t ~ctxt ~now result =
  (match t.canary with Some c -> shadow_step t c ~ctxt ~now result | None -> ());
  match t.grace with Some g -> tick_grace t g | None -> ()

let stage_canary t ?(invocations = 64) ?max_divergences ?(grace = 256) loaded =
  if invocations <= 0 then invalid_arg "Vm.stage_canary: invocations must be positive";
  let max_divergences =
    match max_divergences with Some d -> Stdlib.max 0 d | None -> invocations / 4
  in
  t.canary <-
    Some
      { c_loaded = loaded;
        c_compiled = None;
        c_remaining = invocations;
        c_divergences = 0;
        c_max_divergences = max_divergences;
        c_grace = grace }

let cancel_canary t =
  match t.canary with
  | None -> false
  | Some _ ->
    t.canary <- None;
    Obs.Counter.incr c_rolled_back;
    true

let canary_status t =
  match (t.canary, t.grace) with
  | Some c, _ -> `Canary (c.c_remaining, c.c_divergences)
  | None, Some g -> `Grace g.g_remaining
  | None, None -> `Idle

(* ------------------------------------------------------------------ *)
(* Invocation                                                           *)
(* ------------------------------------------------------------------ *)

let invoke t ~ctxt ~now =
  let violations_before = guardrail_violations_now t in
  let outcome =
    match
      (match t.engine with
       | Interpreted -> Interp.run t.loaded ~ctxt ~now
       | Jit_compiled -> Jit.run (compiled_for t) ~ctxt ~now)
    with
    | outcome -> outcome
    | exception exn -> contain_trap t exn
  in
  let outcome, throttled =
    match limiter_for t ~now with
    | None -> (outcome, false)
    | Some bucket ->
      let granted = Rate_limit.grant bucket ~now:(now ()) ~request:outcome.Interp.result in
      ({ outcome with Interp.result = granted }, granted < outcome.Interp.result)
  in
  if Obs.enabled () then
    record t ~violations_before ~steps:outcome.Interp.steps ~result:outcome.Interp.result
      ~throttled ~denied:outcome.Interp.privacy_denied;
  if t.canary != None || t.grace != None then
    staging_step t ~ctxt ~now outcome.Interp.result;
  outcome

let invoke_result t ~ctxt ~now =
  let violations_before = guardrail_violations_now t in
  (* The trap handlers sit inside each engine arm, on an immediate (int)
     or already-boxed (outcome) value: a handler around the whole match
     would force the triple to materialize and break the JIT path's
     zero-allocation contract (the let-tuple below compiles to direct
     assignments only when every arm ends in a syntactic tuple). *)
  let result, steps, denied =
    match t.engine with
    | Interpreted ->
      let o =
        match Interp.run t.loaded ~ctxt ~now with
        | o -> o
        | exception exn -> contain_trap t exn
      in
      (o.Interp.result, o.Interp.steps, o.Interp.privacy_denied)
    | Jit_compiled ->
      let c = compiled_for t in
      let result =
        match Jit.exec c ~ctxt ~now with
        | r -> r
        | exception exn -> contain_trap t exn
      in
      (result, Jit.last_steps c, Jit.last_privacy_denied c)
  in
  let result, throttled =
    match limiter_for t ~now with
    | None -> (result, false)
    | Some bucket ->
      let granted = Rate_limit.grant bucket ~now:(now ()) ~request:result in
      (granted, granted < result)
  in
  if Obs.enabled () then record t ~violations_before ~steps ~result ~throttled ~denied;
  if t.canary != None || t.grace != None then staging_step t ~ctxt ~now result;
  result

let invoke_checked t ~ctxt ~now =
  match invoke t ~ctxt ~now with
  | outcome -> Ok outcome
  | exception Interp.Trap trap -> Error trap

let invoke_result_checked t ~ctxt ~now =
  match invoke_result t ~ctxt ~now with
  | result -> Ok result
  | exception Interp.Trap trap -> Error trap

(* ------------------------------------------------------------------ *)
(* Batched invocation (DESIGN.md section 13)                           *)
(* ------------------------------------------------------------------ *)

(* One slot of the per-slot fallback loop.  Traps are contained in the
   slot, never raised: the slot's columns record (0, 0, 0, Some trap) and
   the remaining slots still run.  Trap accounting matches the scalar
   path — including a grace-window rollback, after which the *rest of the
   batch* runs the rolled-back incumbent (per-slot failsafe, not
   batch-atomic). *)
let run_slot_fallback t b s ~now =
  let ctxt = b.Batch.ctxts.(s) in
  match t.engine with
  | Interpreted ->
    (match Interp.run t.loaded ~ctxt ~now with
     | o ->
       b.Batch.results.(s) <- o.Interp.result;
       b.Batch.steps.(s) <- o.Interp.steps;
       b.Batch.denied.(s) <- o.Interp.privacy_denied;
       b.Batch.traps.(s) <- None
     | exception exn ->
       (match Interp.trap_of_exn exn with
        | None -> raise exn
        | Some trap ->
          record_trap t;
          b.Batch.results.(s) <- 0;
          b.Batch.steps.(s) <- 0;
          b.Batch.denied.(s) <- 0;
          b.Batch.traps.(s) <- Some trap))
  | Jit_compiled ->
    let c = compiled_for t in
    (match Jit.exec c ~ctxt ~now with
     | result ->
       b.Batch.results.(s) <- result;
       b.Batch.steps.(s) <- Jit.last_steps c;
       b.Batch.denied.(s) <- Jit.last_privacy_denied c;
       b.Batch.traps.(s) <- None
     | exception exn ->
       (match Interp.trap_of_exn exn with
        | None -> raise exn
        | Some trap ->
          record_trap t;
          b.Batch.results.(s) <- 0;
          b.Batch.steps.(s) <- 0;
          b.Batch.denied.(s) <- 0;
          b.Batch.traps.(s) <- Some trap))

let invoke_batch t b ~now =
  let n = b.Batch.n in
  if n > 0 then begin
    let violations_before = guardrail_violations_now t in
    (* The SoA kernel runs only on the JIT engine with fault injection
       quiescent: under an active injection plan every per-slot seam
       (Engine_trap, model faults) must get its own draw, which the
       per-slot loop provides and an instruction-major kernel cannot. *)
    let used_kernel =
      (match t.engine with
       | Jit_compiled when not (Fault.active ()) -> Jit.exec_batch (compiled_for t) b
       | Interpreted | Jit_compiled -> false)
    in
    if not used_kernel then
      for s = 0 to n - 1 do
        run_slot_fallback t b s ~now
      done;
    (* Per-slot epilogue in slot order, exactly as a loop of scalar
       invokes would run it: rate-limiter grant (inherently sequential
       shared state), flight-recorder event, canary/grace staging step.
       Trapped slots are skipped — they produced no result to limit,
       record or shadow.  For the SoA kernel, guardrail violations cannot
       be attributed to a single slot, so the trace flag means "some slot
       of this batch". *)
    for s = 0 to n - 1 do
      if b.Batch.traps.(s) == None then begin
        let result = b.Batch.results.(s) in
        let result, throttled =
          match limiter_for t ~now with
          | None -> (result, false)
          | Some bucket ->
            let granted = Rate_limit.grant bucket ~now:(now ()) ~request:result in
            (granted, granted < result)
        in
        b.Batch.results.(s) <- result;
        if Obs.enabled () then
          record t ~violations_before ~steps:b.Batch.steps.(s) ~result ~throttled
            ~denied:b.Batch.denied.(s);
        if t.canary != None || t.grace != None then
          staging_step t ~ctxt:b.Batch.ctxts.(s) ~now result
      end
    done
  end

let jit_units t =
  match t.compiled with Some c -> Jit.compiled_units c | None -> 0

let invocations t = t.loaded.Loaded.runs
let total_steps t = t.loaded.Loaded.total_steps

let throttled_units t =
  match t.limiter_state with Some bucket -> Rate_limit.throttled bucket | None -> 0

let guardrail_violations t =
  match t.loaded.Loaded.guardrail with Some g -> Guardrail.violations g | None -> 0

let guardrail_violation_rate t =
  match t.loaded.Loaded.guardrail with Some g -> Guardrail.violation_rate g | None -> 0.0

let guardrail_degraded t ~rate =
  match t.loaded.Loaded.guardrail with
  | Some g -> Guardrail.violation_rate_ge g rate
  | None -> false

let privacy_remaining_milli t =
  match t.loaded.Loaded.privacy with
  | Some acct -> Some (Privacy.remaining_milli acct)
  | None -> None
