(** Execution engine wrapper: one loaded program, runnable interpreted or
    JIT compiled, with the program's declared policy guards applied to its
    action results.

    Guardrails are applied inside the engines (at [Exit]); the token-bucket
    rate limiter, when declared, is applied here: the action result is
    treated as a resource request for N units and clamped to the grant
    (§3.3 "Performance interference").

    Failure containment (DESIGN.md section 12): every engine runtime error
    is normalized to {!Interp.trap} and re-raised as [Interp.Trap] — no
    other exception escapes {!invoke} for a fault in the program itself —
    and a staged candidate program can shadow the incumbent for a canary
    window before being atomically promoted (or rolled back). *)

type engine = Interpreted | Jit_compiled

type t

val create : ?engine:engine -> Loaded.t -> t
(** Default engine: [Jit_compiled]. *)

val engine : t -> engine
val set_engine : t -> engine -> unit
(** Switching to [Jit_compiled] (re)compiles. *)

val loaded : t -> Loaded.t

val invoke : t -> ctxt:Ctxt.t -> now:(unit -> int) -> Interp.outcome
(** Run once.  When the program declares [Rate_limited], the outcome's
    [result] is the number of granted units (<= the program's request).

    @raise Interp.Trap on any contained engine fault (fuel exhaustion,
    bad vmem access, division trap, injected fault, helper failure);
    {!traps} counts these.  A trap during a post-promotion grace window
    first rolls the promotion back. *)

val invoke_result : t -> ctxt:Ctxt.t -> now:(unit -> int) -> int
(** Like {!invoke} but returns only the action result; on the JIT engine
    this performs zero heap allocation in steady state (no outcome record
    is built).  Table actions use this as their hot dispatch path. *)

val invoke_checked :
  t -> ctxt:Ctxt.t -> now:(unit -> int) -> (Interp.outcome, Interp.trap) result
(** {!invoke} with the trap surfaced as a value instead of an exception. *)

val invoke_result_checked :
  t -> ctxt:Ctxt.t -> now:(unit -> int) -> (int, Interp.trap) result
(** {!invoke_result} with the trap surfaced as a value. *)

val invoke_batch : t -> Batch.t -> now:(unit -> int) -> unit
(** Run slots [0 .. b.n - 1] of the batch through the program and fill
    the result columns.  On the JIT engine, programs without
    data-dependent control flow or shared mutable state run through one
    structure-of-arrays kernel ({!Jit.exec_batch}) so instruction
    dispatch and model weights amortize over the batch; everything else
    — and every batch under an active fault-injection plan, so per-slot
    seams fire — falls back to a per-slot loop.  Either way a batch of 1
    produces exactly {!invoke}'s [result]/[steps]/[privacy_denied].

    Unlike {!invoke} this never raises for a program fault: a trap in
    slot [k] is contained to that slot ([traps.(k)] set, columns zeroed)
    and the remaining slots still run, with scalar-identical accounting
    (trap counters, grace-window rollback — after which the rest of the
    batch runs the rolled-back incumbent).  Rate-limiter grants, trace
    events and canary/grace staging advance per completed slot in slot
    order, as a loop of scalar invokes would.  Steady-state
    allocation-free on both paths, telemetry on. *)

(** {2 Transactional install: canary shadowing, promotion, rollback} *)

val stage_canary :
  t -> ?invocations:int -> ?max_divergences:int -> ?grace:int -> Loaded.t -> unit
(** Stage [loaded] as the candidate of a two-slot install.  For the next
    [invocations] (default 64) live invocations the candidate runs in
    shadow on a {!Ctxt.copy} of each context; a shadow run that traps
    disqualifies it immediately, and one that violates its guardrail or
    disagrees with the incumbent's result counts as a divergence.  When
    the window closes the candidate is promoted iff its divergences are
    at most [max_divergences] (default [invocations/4]); the displaced
    incumbent is kept for [grace] (default 256) further invocations so
    {!rollback} — or any trap — can restore it.  Staging again replaces
    any in-flight candidate. *)

val cancel_canary : t -> bool
(** Drop an in-flight candidate without promotion; [false] if none. *)

val canary_status : t -> [ `Idle | `Canary of int * int | `Grace of int ]
(** [`Canary (remaining, divergences)] while shadowing; [`Grace remaining]
    after a promotion while rollback is still possible. *)

val rollback : t -> bool
(** Restore the pre-promotion incumbent while its grace window is open;
    [false] when there is nothing to roll back to. *)

val swap : t -> Loaded.t -> unit
(** Immediate (non-canaried) replacement of the running program; resets
    limiter state and drops any canary or grace slot. *)

val jit_units : t -> int
(** Program units the JIT has compiled for this VM (root plus tail-call
    targets reached); 0 when never compiled. *)

val elided_guard_sites : t -> int
(** Static count of instructions whose runtime guards the engines elide
    on the strength of a verifier proof (DESIGN.md section 10); reported
    in telemetry snapshots and trace events. *)

val invocations : t -> int
val total_steps : t -> int
val throttled_units : t -> int
(** Units refused by the rate limiter so far (0 when not rate limited). *)

val traps : t -> int
(** Contained engine faults observed at this VM's boundary. *)

val guardrail_violations : t -> int

val guardrail_violation_rate : t -> float
(** Recent-window violation rate of the program's guardrail, 0.0 when the
    program declares none (see {!Guardrail.violation_rate}). *)

val guardrail_degraded : t -> rate:float -> bool
(** [guardrail_violation_rate t >= rate], without boxing a float return
    — the pipeline health monitor calls this once per batch on the
    serving hot path (see {!Guardrail.violation_rate_ge}). *)

val privacy_remaining_milli : t -> int option
