(** Execution engine wrapper: one loaded program, runnable interpreted or
    JIT compiled, with the program's declared policy guards applied to its
    action results.

    Guardrails are applied inside the engines (at [Exit]); the token-bucket
    rate limiter, when declared, is applied here: the action result is
    treated as a resource request for N units and clamped to the grant
    (§3.3 "Performance interference"). *)

type engine = Interpreted | Jit_compiled

type t

val create : ?engine:engine -> Loaded.t -> t
(** Default engine: [Jit_compiled]. *)

val engine : t -> engine
val set_engine : t -> engine -> unit
(** Switching to [Jit_compiled] (re)compiles. *)

val loaded : t -> Loaded.t
val invoke : t -> ctxt:Ctxt.t -> now:(unit -> int) -> Interp.outcome
(** Run once.  When the program declares [Rate_limited], the outcome's
    [result] is the number of granted units (<= the program's request). *)

val invoke_result : t -> ctxt:Ctxt.t -> now:(unit -> int) -> int
(** Like {!invoke} but returns only the action result; on the JIT engine
    this performs zero heap allocation in steady state (no outcome record
    is built).  Table actions use this as their hot dispatch path. *)

val jit_units : t -> int
(** Program units the JIT has compiled for this VM (root plus tail-call
    targets reached); 0 when never compiled. *)

val elided_guard_sites : t -> int
(** Static count of instructions whose runtime guards the engines elide
    on the strength of a verifier proof (DESIGN.md section 10); reported
    in telemetry snapshots and trace events. *)

val invocations : t -> int
val total_steps : t -> int
val throttled_units : t -> int
(** Units refused by the rate limiter so far (0 when not rate limited). *)

val guardrail_violations : t -> int
val privacy_remaining_milli : t -> int option
