(* Pure decision functions shared by the serving-plane implementations
   (Ring.try_push/drain_into, Shard.park) and the small-scope transition
   systems the model checker enumerates (Analysis.Mc_models): the checker
   exercises the exact predicates the datapath runs.  Everything here is
   total, allocation-free and effect-free. *)

let push_free ~tail ~cached_head ~capacity = tail - cached_head < capacity
let drain_ready ~cached_tail ~head ~max = cached_tail - head >= max

let drain_batch ~cached_tail ~head ~max =
  let avail = cached_tail - head in
  if avail <= 0 then 0 else if avail < max then avail else max

let should_sleep ~should_stop ~rings_empty ~pending_empty =
  (not should_stop) && rings_empty && pending_empty

module type SPSC = sig
  type t

  val create : capacity:int -> t
  val capacity : t -> int
  val try_push : t -> tenant:int -> page:int -> stamp:int -> bool
  val drain_into : t -> max:int -> int array -> int array -> int array -> int
  val is_empty : t -> bool
  val length : t -> int
end
