(** Pure decision functions of the serving-plane concurrency protocols.

    The SPSC ring ({!Ring}) and the shard park/wake path ({!Shard}) make
    a handful of small decisions — "is the ring full against my cached
    peer cursor?", "can this batch be served from the snapshot?", "may
    the consumer go to sleep?".  Those decisions are factored out here as
    pure functions of plain integers so that the implementation and the
    {!Analysis.Mc_models} transition systems call {e the same code}: the
    model checker then exercises the exact predicates the datapath runs,
    not a transcription of them (DESIGN.md section 15).

    Everything in this module is total, allocation-free and effect-free. *)

(** {1 SPSC ring (producer side)} *)

val push_free : tail:int -> cached_head:int -> capacity:int -> bool
(** The producer may write slot [tail]: fewer than [capacity] events sit
    between its cursor and its snapshot of the consumer's.  Cursors are
    monotonically increasing (never masked), so the test is exact when
    [cached_head] is fresh and conservative (may report full when space
    has just been freed) when it is stale — the producer refreshes the
    snapshot and re-asks exactly once on an apparent-full verdict. *)

(** {1 SPSC ring (consumer side)} *)

val drain_ready : cached_tail:int -> head:int -> max:int -> bool
(** The cached producer snapshot alone can fill a batch of [max]: no
    refresh needed.  When false, the consumer must re-read the shared
    tail before concluding anything — otherwise published events could
    be left behind on an under-filled (or empty) verdict. *)

val drain_batch : cached_tail:int -> head:int -> max:int -> int
(** Batch size to serve from the (possibly just refreshed) snapshot:
    [min (cached_tail - head) max], clamped at zero. *)

(** {1 Shard park/wake} *)

val should_sleep : should_stop:bool -> rings_empty:bool -> pending_empty:bool -> bool
(** The consumer, holding the park mutex with its parked flag published,
    may block on the condition variable: it is not shutting down and the
    mutex-protected re-check found no ring events and no posted
    commands.  Producers observe the parked flag {e after} their push /
    post and serialize on the same mutex to broadcast, so a [true]
    verdict here can never strand published work (machine-checked by
    {!Analysis.Mc_models.shard}). *)

(** {1 Conformance} *)

(** The surface a ring implementation must present.  {!Ring} is checked
    against it at compile time (see [shard.ml]); the model checker's
    small-scope ring drives {!push_free}/{!drain_ready}/{!drain_batch}
    through the same signature discipline, keeping model and
    implementation honest against each other. *)
module type SPSC = sig
  type t

  val create : capacity:int -> t
  val capacity : t -> int
  val try_push : t -> tenant:int -> page:int -> stamp:int -> bool
  val drain_into : t -> max:int -> int array -> int array -> int array -> int
  val is_empty : t -> bool
  val length : t -> int
end
