(* Single-producer single-consumer ring of serve events.

   Layout: one flat int array of [capacity * slot_words] words (tenant,
   page, admit stamp, pad), power-of-two capacity, and two monotonically
   increasing cursors — [tail] advanced only by the producer, [head] only
   by the consumer.  The cursors are Atomic.t (OCaml atomics are seq_cst,
   so the plain slot writes before [Atomic.set tail] happen-before the
   consumer's plain reads after its [Atomic.get tail] — the standard SPSC
   publication argument).

   Each side also keeps a cached snapshot of the *other* side's cursor in
   a one-element array it alone writes: the producer re-reads [head] only
   on apparent-full, the consumer re-reads [tail] only when the snapshot
   cannot fill the requested batch, so the steady state stays at one or
   two atomic loads + one atomic store per side per operation.  Cursors and caches are spaced a cache line apart with
   the dead-allocation idiom lib/obs uses for its counter stripes.

   Everything is an immediate int: push and drain allocate nothing. *)

let slot_words = 4

type t = {
  data : int array;
  mask : int; (* capacity - 1; capacity is a power of two *)
  head : int Atomic.t; (* consumer cursor (next slot to read) *)
  tail : int Atomic.t; (* producer cursor (next slot to write) *)
  cached_head : int array; (* producer-owned snapshot of [head] *)
  cached_tail : int array; (* consumer-owned snapshot of [tail] *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(* ~1 cache line of dead words between the preceding and following
   allocations, so the four contended cells never share a line. *)
let spacer () = ignore (Sys.opaque_identity (Array.make 6 0))

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap = pow2_at_least capacity 1 in
  spacer ();
  let head = Atomic.make 0 in
  spacer ();
  let tail = Atomic.make 0 in
  spacer ();
  let cached_head = Array.make 1 0 in
  spacer ();
  let cached_tail = Array.make 1 0 in
  spacer ();
  { data = Array.make (cap * slot_words) 0; mask = cap - 1; head; tail; cached_head; cached_tail }

let capacity t = t.mask + 1

(* Producer side.  [stamp] is the admission timestamp the consumer turns
   into queueing latency. *)
let try_push t ~tenant ~page ~stamp =
  let tail = Atomic.get t.tail in
  let cap = t.mask + 1 in
  let free =
    Protocol.push_free ~tail ~cached_head:t.cached_head.(0) ~capacity:cap
    || begin
      (* Apparent full: refresh the head snapshot and re-check. *)
      t.cached_head.(0) <- Atomic.get t.head;
      Protocol.push_free ~tail ~cached_head:t.cached_head.(0) ~capacity:cap
    end
  in
  if free then begin
    let base = (tail land t.mask) * slot_words in
    let d = t.data in
    Array.unsafe_set d base tenant;
    Array.unsafe_set d (base + 1) page;
    Array.unsafe_set d (base + 2) stamp;
    (* Publish: the atomic store orders the slot writes above before any
       consumer that observes the new tail. *)
    Atomic.set t.tail (tail + 1);
    true
  end
  else false

(* Consumer side: copy up to [max] events into the caller's columns,
   returning the count.  The caller guarantees the arrays hold [max]. *)
let drain_into t ~max tenants pages stamps =
  let head = Atomic.get t.head in
  if not (Protocol.drain_ready ~cached_tail:t.cached_tail.(0) ~head ~max) then
    (* The snapshot cannot fill the batch: refresh it so events already
       published are not left for the next sweep (under-filled batches
       cost a dispatch each). *)
    t.cached_tail.(0) <- Atomic.get t.tail;
  let n = Protocol.drain_batch ~cached_tail:t.cached_tail.(0) ~head ~max in
  if n <= 0 then 0
  else begin
    let d = t.data in
    for i = 0 to n - 1 do
      let base = ((head + i) land t.mask) * slot_words in
      tenants.(i) <- Array.unsafe_get d base;
      pages.(i) <- Array.unsafe_get d (base + 1);
      stamps.(i) <- Array.unsafe_get d (base + 2)
    done;
    (* Release the slots back to the producer. *)
    Atomic.set t.head (head + n);
    n
  end

(* Racy by design: exact when both sides are quiescent, a parking hint
   otherwise (the park protocol re-checks under its mutex).

   The snapshot order matters and is explicit — [tail] strictly before
   [head].  (An expression like [Atomic.get t.tail - Atomic.get t.head]
   would load head FIRST under OCaml's right-to-left evaluation order.)
   With tail first, head can only have advanced by the time it is read,
   so the difference never exceeds the true occupancy at the head-read
   instant: the result is in [0, capacity] always, a lower bound on what
   the consumer can drain and — since only the producer moves tail — an
   upper bound on the occupancy the producer still has to cover.  Read
   head first and a concurrent burst can yield a length above capacity. *)
let length t =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  let n = tail - head in
  if n < 0 then 0 else n

let is_empty t = length t = 0
