(** Single-producer single-consumer ring of serve events.

    The serving layer allocates one ring per (producer, shard) pair, so
    neither side ever contends with a peer: the producer alone moves the
    tail, the shard worker alone moves the head.  Cursors are cache-line
    spaced and each side caches the other's cursor, refreshing only on
    apparent-full / batch-underfill — the steady state is one or two
    atomic loads and one atomic store per operation, and neither
    {!try_push} nor {!drain_into} allocates. *)

type t

val create : capacity:int -> t
(** [capacity] is rounded up to a power of two.  Raises [Invalid_argument]
    when it is not positive. *)

val capacity : t -> int

val try_push : t -> tenant:int -> page:int -> stamp:int -> bool
(** Producer side: enqueue one event, [false] when the ring is full
    (caller counts it as backpressure and drops or retries).  [stamp] is
    the admission timestamp; the consumer turns it into queueing
    latency.  Must only be called from the ring's single producer. *)

val drain_into : t -> max:int -> int array -> int array -> int array -> int
(** [drain_into t ~max tenants pages stamps] — consumer side: copy up to
    [max] pending events into the three column arrays (each at least
    [max] long) and return the count, 0 when empty.  Must only be called
    from the ring's single consumer. *)

val is_empty : t -> bool
(** Racy snapshot — exact only when both sides are quiescent; the shard
    park protocol re-checks it under the park mutex. *)

val length : t -> int
(** Racy snapshot of the queue depth, read as [tail] strictly before
    [head] (both cursors only ever increase).  The ordering guarantee:
    the result is always within [0, capacity]; it is a {e lower bound}
    on the events available to the consumer (every counted event was
    published before the tail read and none can be drained by anyone
    else), and an {e upper bound} on the occupancy the producer still
    faces (head can only have advanced since it was read).  Reading the
    cursors in the opposite order admits transient values above
    [capacity] under concurrent push/drain. *)
