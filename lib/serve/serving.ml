(* Sharded multi-tenant serving front-end (DESIGN.md section 14).

   Tenants are hash-pinned to shards, so a tenant's execution context,
   table entries and breaker live on exactly one shard and its events are
   served in FIFO order; producers talk to each shard through a private
   SPSC ring, so admission never takes a lock.  Shards are drained either
   inline on the caller's domain ([drain] — the single-domain and test
   mode) or by one pinned worker domain each ([start]/[stop]). *)

type config = {
  shards : int;
  producers : int;
  ring_capacity : int;
  max_batch : int;
  tokens_per_sec : int; (* per-producer admission rate; 0 = unlimited *)
  burst : int;
}

let default_config =
  { shards = 1;
    producers = 1;
    ring_capacity = 1024;
    max_batch = 64;
    tokens_per_sec = 0;
    burst = 1024 }

type t = {
  config : config;
  shards : Shard.t array;
  limiters : Rmt.Rate_limit.t array; (* one per producer; empty = unlimited *)
  (* Coarse shared clock (ns): producers stamp admissions and workers
     stamp drains from it.  An atomic heartbeat rather than a syscall
     per event — gettimeofday would box a float on the admission path. *)
  now_ns : int Atomic.t;
  stop : bool Atomic.t;
  mutable workers : Par.Pinned.t array;
  c_admitted : Obs.Counter.t;
  c_throttled : Obs.Counter.t;
  c_backpressure : Obs.Counter.t;
}

let create ?(config = default_config) ~make_sink () =
  if config.shards <= 0 then invalid_arg "Serving.create: shards must be positive";
  if config.producers <= 0 then invalid_arg "Serving.create: producers must be positive";
  let shards =
    Array.init config.shards (fun index ->
        let sink = make_sink ~index ~view_ns:(Printf.sprintf "rmt.serve.%d" index) in
        Shard.create ~index ~producers:config.producers
          ~ring_capacity:config.ring_capacity ~max_batch:config.max_batch sink)
  in
  let limiters =
    if config.tokens_per_sec <= 0 then [||]
    else
      Array.init config.producers (fun _ ->
          Rmt.Rate_limit.create ~tokens_per_sec:config.tokens_per_sec ~burst:config.burst
            ~now:0)
  in
  { config;
    shards;
    limiters;
    now_ns = Atomic.make 0;
    stop = Atomic.make false;
    workers = [||];
    c_admitted = Obs.Counter.make "rmt.serve.admitted";
    c_throttled = Obs.Counter.make "rmt.serve.throttled";
    c_backpressure = Obs.Counter.make "rmt.serve.backpressure" }

let config t = t.config
let shards t = t.shards
let shard t i = t.shards.(i)
let now_ns t = Atomic.get t.now_ns

(* The clock is advanced by whoever owns time in the host program (the
   bench's producer loop, the simulator tick, a timer domain): monotone
   max so concurrent heartbeats never step backwards. *)
let rec set_now t now =
  let cur = Atomic.get t.now_ns in
  if now > cur && not (Atomic.compare_and_set t.now_ns cur now) then set_now t now

(* Tenant -> shard: multiplicative hash so adjacent tenant ids spread.
   Must stay stable across runs — the digest tests compare fleets. *)
let shard_of_tenant t tenant =
  let h = tenant * 0x9e3779b1 land max_int in
  h mod Array.length t.shards

(* Admission: one rate-limiter grant (all-integer, allocation-free),
   then one SPSC push.  [`Throttled] is an admission-policy refusal,
   [`Backpressure] a full ring (the shard is behind); both leave the
   event undelivered and count in rmt.serve.{throttled,backpressure}. *)
let submit t ~producer ~tenant ~page =
  let now = Atomic.get t.now_ns in
  let granted =
    Array.length t.limiters = 0
    || Rmt.Rate_limit.grant t.limiters.(producer) ~now ~request:1 = 1
  in
  if not granted then begin
    Obs.Counter.incr t.c_throttled;
    `Throttled
  end
  else begin
    let shard = Array.unsafe_get t.shards (shard_of_tenant t tenant) in
    if Ring.try_push (Shard.ring shard producer) ~tenant ~page ~stamp:now then begin
      Obs.Counter.incr t.c_admitted;
      Shard.wake shard;
      `Admitted
    end
    else begin
      Obs.Counter.incr t.c_backpressure;
      `Backpressure
    end
  end

let admitted t = Obs.Counter.value t.c_admitted
let throttled t = Obs.Counter.value t.c_throttled
let backpressure t = Obs.Counter.value t.c_backpressure

(* ------------------------------------------------------------------ *)
(* Inline mode                                                         *)
(* ------------------------------------------------------------------ *)

let rec drain_from t i acc =
  if i >= Array.length t.shards then acc
  else drain_from t (i + 1) (acc + Shard.drain_once t.shards.(i) ~now:(Atomic.get t.now_ns))

(* One sweep over every shard on the calling domain.  Must not be mixed
   with [start] — a shard has exactly one consumer. *)
let drain t = drain_from t 0 0

let rec drain_until_idle t =
  if drain t > 0 then drain_until_idle t

(* ------------------------------------------------------------------ *)
(* Pinned workers                                                      *)
(* ------------------------------------------------------------------ *)

let spin_rounds = 64

let worker_loop t shard =
  let idle = ref 0 in
  while not (Atomic.get t.stop) do
    let n = Shard.drain_once shard ~now:(Atomic.get t.now_ns) in
    if n > 0 then idle := 0
    else begin
      incr idle;
      if !idle >= spin_rounds then begin
        Shard.park shard ~should_stop:(fun () -> Atomic.get t.stop);
        idle := 0
      end
      else Domain.cpu_relax ()
    end
  done;
  (* Final sweep: everything admitted before [stop] was published must
     still be served. *)
  while Shard.drain_once shard ~now:(Atomic.get t.now_ns) > 0 do
    ()
  done

let start t =
  if Array.length t.workers > 0 then invalid_arg "Serving.start: already started";
  Atomic.set t.stop false;
  (* Snapshot the caller's fault-injection scope once, then split it per
     worker: fault plans are domain-local (DLS), so without this a chaos
     plan armed on the control domain would never reach the shard
     datapaths (and sharing one rng across workers would race). *)
  let cap = Rmt.Fault.capture () in
  t.workers <-
    Array.init (Array.length t.shards) (fun i ->
        let worker_cap = Rmt.Fault.capture_for ~index:i cap in
        Par.Pinned.spawn (fun () ->
            Rmt.Fault.with_capture worker_cap (fun () -> worker_loop t t.shards.(i))))

let stop t =
  if Array.length t.workers > 0 then begin
    Atomic.set t.stop true;
    Array.iter Shard.wake_force t.shards;
    Array.iter Par.Pinned.join t.workers;
    t.workers <- [||]
  end

let running t = Array.length t.workers > 0

(* ------------------------------------------------------------------ *)
(* Fleet views                                                         *)
(* ------------------------------------------------------------------ *)

let served t = Array.fold_left (fun acc s -> acc + Shard.served s) 0 t.shards
let digest t = Array.fold_left (fun acc s -> acc lxor Shard.digest s) 0 t.shards

let post t ~shard f = Shard.post t.shards.(shard) f
let post_tenant t ~tenant f = Shard.post t.shards.(shard_of_tenant t tenant) f

(* ------------------------------------------------------------------ *)
(* Standard fleets                                                     *)
(* ------------------------------------------------------------------ *)

let create_datapath ?(config = default_config) () =
  let dps = Array.make config.shards None in
  let t =
    create ~config
      ~make_sink:(fun ~index ~view_ns ->
        let dp = Shard.Datapath.create ~view_ns ~max_batch:config.max_batch () in
        dps.(index) <- Some dp;
        Shard.Datapath.sink dp)
      ()
  in
  let dps =
    Array.map (function Some dp -> dp | None -> assert false) dps
  in
  (t, dps)

let create_prefetch ?(config = default_config) ?params ?(seed = 42) () =
  let pfs = Array.make config.shards None in
  let t =
    create ~config
      ~make_sink:(fun ~index ~view_ns ->
        let pf = Rkd.Prefetch_rmt.create ?params ~seed:(seed + index) ~view_ns () in
        pfs.(index) <- Some pf;
        { Shard.run =
            (fun ~n ~tenants ~pages ~now ->
              (* The prefetch entry wants exactly-sized arrays (and its
                 host-side bookkeeping allocates regardless), so this
                 sink copies; the zero-alloc serving path is the
                 [Datapath] sink. *)
              let pids = Array.sub tenants 0 n in
              let pgs = Array.sub pages 0 n in
              ignore
                (Rkd.Prefetch_rmt.on_access_batch pf ~pids ~pages:pgs ~hit:false ~now
                  : int list array));
          control = Some (Rkd.Prefetch_rmt.control pf);
          digest = (fun () -> 0) })
      ()
  in
  let pfs = Array.map (function Some pf -> pf | None -> assert false) pfs in
  (t, pfs)

(* --- staged rollout over shard datapaths ------------------------------ *)

(* One {!Rkd.Fleet.Rollout.target} per shard: the same poll-driven
   1 -> 25% -> all progression the fleet control plane uses, applied to a
   serving fleet's per-shard controls.  [install] stages the candidate as
   a canary on the shard's pinned program; [status] detects promotion by
   physical identity of the Vm's loaded slot; [restore] takes the
   transactional rollback path (the canary is cancelled, or the grace
   window unwinds the promotion).  Inline-mode serving only: with domains
   running, control commands must go through [post] instead. *)
let rollout_targets ?invocations ?max_divergences ?grace ~dps ~program () =
  Array.mapi
    (fun i dp ->
      let vm = Shard.Datapath.vm dp in
      let before = ref (Rmt.Vm.loaded vm) in
      { Rkd.Fleet.Rollout.label = i;
        install =
          (fun () ->
            before := Rmt.Vm.loaded vm;
            match
              Rmt.Control.install_canary (Shard.Datapath.control dp) ?invocations
                ?max_divergences ?grace program
            with
            | Ok _ -> true
            | Error _ -> false);
        status =
          (fun () ->
            match Rmt.Vm.canary_status vm with
            | `Canary _ -> `Pending
            | `Idle | `Grace _ ->
              if Rmt.Vm.loaded vm != !before then `Promoted else `Failed);
        healthy =
          (fun () -> Rmt.Breaker.state (Shard.Datapath.breaker dp) = Rmt.Breaker.Closed);
        restore =
          (fun () -> Rmt.Control.rollback_program (Shard.Datapath.control dp) program.Rmt.Program.name) })
    dps

let staged_rollout ?invocations ?max_divergences ?grace ?(stage_ticks_ns = 1_000_000_000)
    t ~dps ~program () =
  let targets = rollout_targets ?invocations ?max_divergences ?grace ~dps ~program () in
  Rkd.Fleet.Rollout.start ~targets
    ~stages:(Rkd.Fleet.Rollout.stage_plan (Array.length dps))
    ~now:(now_ns t) ~stage_ticks:stage_ticks_ns
