(** Sharded multi-tenant serving front-end (DESIGN.md section 14).

    Tenants are hash-pinned to shards: a tenant's execution-context slab,
    table entries and circuit breaker live on exactly one shard, so
    cross-tenant isolation needs no locks and per-tenant event order is
    FIFO end to end.  Producers reach each shard through a private SPSC
    {!Ring}; admission ({!submit}) is rate-limited, allocation-free and
    lock-free.  Shards drain either inline on the caller's domain
    ({!drain}) or on one pinned worker domain each ({!start}).

    The steady-state loop — [submit] through [drain] with the
    {!Shard.Datapath} sink and warm tenants — allocates nothing, with
    telemetry on. *)

type config = {
  shards : int;
  producers : int;
  ring_capacity : int;    (** per (producer, shard) ring; rounded to 2^k *)
  max_batch : int;        (** drain batch size = VM batch capacity *)
  tokens_per_sec : int;   (** per-producer admission rate; 0 = unlimited *)
  burst : int;
}

val default_config : config
(** 1 shard, 1 producer, 1024-slot rings, batches of 64, no rate limit. *)

type t

val create :
  ?config:config -> make_sink:(index:int -> view_ns:string -> Shard.sink) -> unit -> t
(** [make_sink] is called once per shard at creation (on the creating
    domain) with the shard's telemetry namespace [rmt.serve.<index>]. *)

val create_datapath : ?config:config -> unit -> t * Shard.Datapath.dp array
(** A fleet over the standard {!Shard.Datapath} sink, one per shard. *)

val create_prefetch :
  ?config:config -> ?params:Rkd.Prefetch_rmt.params -> ?seed:int -> unit ->
  t * Rkd.Prefetch_rmt.t array
(** A fleet of shard-pinned prefetch case studies ({!Rkd.Prefetch_rmt}),
    one full instance (own control plane, trainer, breaker) per shard,
    seeded [seed + index]. *)

val config : t -> config
val shards : t -> Shard.t array
val shard : t -> int -> Shard.t
val shard_of_tenant : t -> int -> int

(** {2 Clock} *)

val now_ns : t -> int
val set_now : t -> int -> unit
(** Advance the shared coarse clock (monotone max — concurrent
    heartbeats never step it backwards).  Producers stamp admissions and
    workers stamp drains from this clock; whoever owns time in the host
    program drives it. *)

(** {2 Admission} *)

val submit : t -> producer:int -> tenant:int -> page:int -> [ `Admitted | `Throttled | `Backpressure ]
(** One event from [producer].  [`Throttled]: the producer's token
    bucket refused it.  [`Backpressure]: the tenant's shard ring is full
    (the shard is behind); the event is dropped and counted.  Must be
    called by at most one thread per [producer] index at a time (SPSC).
    Allocation-free. *)

val admitted : t -> int
val throttled : t -> int
val backpressure : t -> int

(** {2 Inline mode} *)

val drain : t -> int
(** One sweep over every shard on the calling domain (control commands,
    then up to [max_batch] events per ring).  Single-domain mode — must
    not be mixed with {!start}; a shard has exactly one consumer. *)

val drain_until_idle : t -> unit

(** {2 Pinned workers} *)

val start : t -> unit
(** Spawn one pinned worker domain per shard.  The caller's
    fault-injection scope is captured once and split per worker
    ({!Rmt.Fault.capture_for}), so a chaos plan armed on the control
    domain reaches every shard datapath with an independent rng stream.
    Workers spin briefly when idle, then park until {!submit} or
    {!post} wakes them. *)

val stop : t -> unit
(** Publish stop, wake and join every worker.  Events admitted before
    [stop] are served (each worker does a final sweep).  No-op when not
    running. *)

val running : t -> bool

(** {2 Fleet views} *)

val served : t -> int
(** Total events served.  Exact when quiescent (after {!stop} or between
    inline drains). *)

val digest : t -> int
(** Xor of the shards' sink digests: identical for any shard count and
    any batch boundaries when fed the same per-tenant event streams. *)

val post : t -> shard:int -> (unit -> unit) -> unit
(** Run a control command (canary install, breaker trip, …) on a shard's
    consumer domain before its next batch. *)

val post_tenant : t -> tenant:int -> (unit -> unit) -> unit
(** {!post} addressed by tenant. *)

(** {2 Staged rollout}

    The fleet control plane's staged canary progression ({!Rkd.Fleet.Rollout},
    DESIGN.md section 17) applied to a serving fleet: 1 shard, then 25%,
    then all, each stage shadow-running the candidate under its
    divergence budget and gated on the shard breakers. *)

val rollout_targets :
  ?invocations:int ->
  ?max_divergences:int ->
  ?grace:int ->
  dps:Shard.Datapath.dp array ->
  program:Rmt.Program.t ->
  unit ->
  Rkd.Fleet.Rollout.target array
(** One rollout target per shard datapath.  [program] must carry the name
    of a program already installed on the shards (the standard datapath's
    is {!Shard.Datapath.program_name}); its canary shadow-runs against
    that incumbent. *)

val staged_rollout :
  ?invocations:int ->
  ?max_divergences:int ->
  ?grace:int ->
  ?stage_ticks_ns:int ->
  t ->
  dps:Shard.Datapath.dp array ->
  program:Rmt.Program.t ->
  unit ->
  [ `Started of Rkd.Fleet.Rollout.t | `Unhealthy | `Failed of int ]
(** Begin a staged rollout of [program] across [dps] on the serving
    clock.  Drive it with {!Rkd.Fleet.Rollout.step} between inline
    drains, passing [now_ns t]; stages time out after [stage_ticks_ns]
    (default 1 s).  Inline mode only — with consumer domains running,
    route installs through {!post}. *)
