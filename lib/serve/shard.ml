(* One serving shard: a tenant partition's rings, drain scratch, pinned
   datapath state and telemetry.  The shard itself is sink-agnostic — the
   [sink] record is the per-batch datapath callback plus the optional
   control plane the serving front-end routes canary installs and breaker
   commands through.  [Datapath] below is the standard sink: a
   shard-private {!Rmt.Control} with the prefetch collect program behind
   a per-shard circuit breaker, per-tenant execution-context slabs and a
   rolling per-tenant decision digest. *)

(* Compile-time conformance: the real ring presents exactly the surface
   the protocol module specifies, so the model checker's small-scope ring
   (Analysis.Mc_models, built on the same Protocol decision functions)
   and the implementation cannot drift apart silently. *)
module _ : Protocol.SPSC = Ring

type sink = {
  run : n:int -> tenants:int array -> pages:int array -> now:int -> unit;
  control : Rmt.Control.t option;
  digest : unit -> int;
}

type t = {
  index : int;
  name : string; (* telemetry namespace: rmt.serve.<index> *)
  rings : Ring.t array; (* one SPSC ring per producer *)
  max_batch : int;
  (* Drain scratch columns, allocated once; [max_batch] long. *)
  d_tenants : int array;
  d_pages : int array;
  d_stamps : int array;
  sink : sink;
  (* Control-plane commands (canary installs, breaker trips/resets)
     posted from other domains; drained between batches so they run on
     the shard's own domain.  Steady state is one atomic load. *)
  pending : (unit -> unit) list Atomic.t;
  (* Park protocol: the worker takes the mutex, publishes [parked],
     re-checks its rings and only then waits; producers that observe
     [parked] after a push serialize on the mutex, so the wakeup cannot
     be lost. *)
  park_mutex : Mutex.t;
  park_cond : Condition.t;
  parked : bool Atomic.t;
  c_batches : Obs.Counter.t; (* rmt.serve.<i>.batches *)
  c_invocations : Obs.Counter.t; (* rmt.serve.<i>.invocations *)
  h_queue_ns : Obs.Histo.t; (* rmt.serve.<i>.queue_ns *)
  h_latency_ns : Obs.Histo.t; (* rmt.serve.latency_ns — shared: Obs
                                 dedups metrics by name, so every shard
                                 feeds one fleet-wide histogram *)
  mutable served : int; (* events drained into the sink (worker-owned) *)
}

let create ~index ~producers ~ring_capacity ~max_batch sink =
  if producers <= 0 then invalid_arg "Shard.create: producers must be positive";
  if max_batch <= 0 then invalid_arg "Shard.create: max_batch must be positive";
  let name = Printf.sprintf "rmt.serve.%d" index in
  { index;
    name;
    rings = Array.init producers (fun _ -> Ring.create ~capacity:ring_capacity);
    max_batch;
    d_tenants = Array.make max_batch 0;
    d_pages = Array.make max_batch 0;
    d_stamps = Array.make max_batch 0;
    sink;
    pending = Atomic.make [];
    park_mutex = Mutex.create ();
    park_cond = Condition.create ();
    parked = Atomic.make false;
    c_batches = Obs.Counter.make (name ^ ".batches");
    c_invocations = Obs.Counter.make (name ^ ".invocations");
    h_queue_ns = Obs.Histo.make (name ^ ".queue_ns");
    h_latency_ns = Obs.Histo.make "rmt.serve.latency_ns";
    served = 0 }

let index t = t.index
let name t = t.name
let ring t producer = t.rings.(producer)
let producers t = Array.length t.rings
let control t = t.sink.control
let digest t = t.sink.digest ()
let served t = t.served

(* ------------------------------------------------------------------ *)
(* Cross-domain control commands                                       *)
(* ------------------------------------------------------------------ *)

let rec push_pending t f =
  let cur = Atomic.get t.pending in
  if not (Atomic.compare_and_set t.pending cur (f :: cur)) then push_pending t f

(* Run queued commands on the shard's own domain, oldest first.  The
   empty-queue probe is a single atomic load and a branch. *)
let run_pending t =
  match Atomic.get t.pending with
  | [] -> ()
  | _ :: _ ->
    let cmds = Atomic.exchange t.pending [] in
    List.iter (fun f -> f ()) (List.rev cmds)

(* ------------------------------------------------------------------ *)
(* Draining                                                            *)
(* ------------------------------------------------------------------ *)

let drain_ring t ring ~now =
  let n = Ring.drain_into ring ~max:t.max_batch t.d_tenants t.d_pages t.d_stamps in
  if n > 0 then begin
    t.sink.run ~n ~tenants:t.d_tenants ~pages:t.d_pages ~now;
    (* Queueing latency: admission stamp -> drain.  The shared
       [rmt.serve.latency_ns] histogram is the bench's p99 source. *)
    for i = 0 to n - 1 do
      let wait = now - Array.unsafe_get t.d_stamps i in
      let wait = if wait < 0 then 0 else wait in
      Obs.Histo.observe t.h_queue_ns wait;
      Obs.Histo.observe t.h_latency_ns wait
    done;
    t.served <- t.served + n;
    Obs.Counter.add t.c_invocations n;
    Obs.Counter.incr t.c_batches
  end;
  n

let rec drain_rings t ~now i acc =
  if i >= Array.length t.rings then acc
  else drain_rings t ~now (i + 1) (acc + drain_ring t t.rings.(i) ~now)

(* One sweep: control commands first (so a posted canary install applies
   to the batches that follow), then up to [max_batch] events from each
   producer ring.  Returns the number of events served; zero-allocation
   when the queues are empty or the sink's steady state is. *)
let drain_once t ~now =
  run_pending t;
  drain_rings t ~now 0 0

(* ------------------------------------------------------------------ *)
(* Parking                                                             *)
(* ------------------------------------------------------------------ *)

let rec rings_empty_from t i =
  i >= Array.length t.rings || (Ring.is_empty t.rings.(i) && rings_empty_from t (i + 1))

let park t ~should_stop =
  Mutex.lock t.park_mutex;
  (* Exception-safe: [should_stop] reaches arbitrary caller code (a
     fault-injecting stop probe, say) — a raise must still clear the
     parked flag and release the mutex, or every later wake/park would
     deadlock the shard. *)
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.parked false;
      Mutex.unlock t.park_mutex)
    (fun () ->
      Atomic.set t.parked true;
      (* Re-check after publishing [parked]: a producer that pushed before
         it could observe the flag left work we must not sleep on.  A
         spurious wakeup just returns to the drain loop. *)
      if
        Protocol.should_sleep ~should_stop:(should_stop ())
          ~rings_empty:(rings_empty_from t 0)
          ~pending_empty:
            (match Atomic.get t.pending with [] -> true | _ :: _ -> false)
      then Condition.wait t.park_cond t.park_mutex)

(* Producer-side nudge after a push: a single atomic load unless the
   worker is actually parked. *)
let wake t =
  if Atomic.get t.parked then begin
    Mutex.lock t.park_mutex;
    Condition.broadcast t.park_cond;
    Mutex.unlock t.park_mutex
  end

(* Unconditional wake for shutdown: serializes on the mutex so a worker
   between publishing [parked] and waiting cannot miss it. *)
let wake_force t =
  Mutex.lock t.park_mutex;
  Condition.broadcast t.park_cond;
  Mutex.unlock t.park_mutex

let post t f =
  push_pending t f;
  wake t

(* ------------------------------------------------------------------ *)
(* Standard datapath sink                                              *)
(* ------------------------------------------------------------------ *)

module Datapath = struct
  let hook = Rkd.Hooks.lookup_swap_cache
  let program_name = "pf_collect"

  (* Stock-heuristic marker, distinguishable from any real collect
     result; served per slot while the shard's breaker is open. *)
  let fallback_marker = min_int

  (* Rolling per-tenant digest lives at a reserved dense context key so
     the per-slot update is allocation-free.  Must stay clear of the
     collect program's keys (pid/page/last_page/heuristic at 0..3,
     feature block from 8) and the predict result block at 64. *)
  let digest_key = 120

  (* Last chunk id a tenant appeared in (see [run]): duplicate detection
     without a scratch set, also at a reserved dense key. *)
  let chunk_key = 121

  let () = assert (digest_key < Rmt.Ctxt.dense_bound && chunk_key < Rmt.Ctxt.dense_bound)

  type dp = {
    control : Rmt.Control.t;
    table : Rmt.Table.t;
    vm : Rmt.Vm.t;
    breaker : Rmt.Breaker.t;
    batch : Rmt.Batch.t;
    ctxts : (int, Rmt.Ctxt.t) Hashtbl.t; (* tenant -> pinned slab *)
    now_cell : int array; (* drain timestamp; the control clock reads it *)
    chunk_cell : int array; (* monotonically increasing chunk id *)
    mutable tenant_order : int list; (* first-touch order, digest fold *)
  }

  let mix h v =
    let h = (h lxor v) * 0x9e3779b1 in
    h land max_int

  let create ~view_ns ~max_batch () =
    let control = Rmt.Control.create ~view_ns () in
    let params = Rkd.Prefetch_rmt.default_params in
    let vm =
      match Rmt.Control.install control (Rkd.Prefetch_rmt.build_collect_program params) with
      | Ok vm -> vm
      | Error e -> invalid_arg ("Shard.Datapath.create: install failed: " ^ e)
    in
    let table =
      Rmt.Control.create_table control ~name:"serve_access_tab"
        ~match_keys:[| Rkd.Hooks.key_pid |] ~default:(Rmt.Table.Run vm)
    in
    Rmt.Control.attach control ~hook table;
    let breaker =
      Rmt.Control.protect control ~hook ~programs:[ program_name ]
        ~fallback:(fun _ -> fallback_marker) ()
    in
    let d =
      { control;
        table;
        vm;
        breaker;
        batch = Rmt.Batch.create ~capacity:max_batch;
        ctxts = Hashtbl.create 64;
        now_cell = Array.make 1 0;
        chunk_cell = Array.make 1 0;
        tenant_order = [] }
    in
    Rmt.Control.set_clock control (fun () -> d.now_cell.(0));
    d

  (* First touch of a tenant: allocate its context slab and give it an
     exact-match table entry (the paper's per-process entry insertion).
     Every entry runs the same installed program, so batches stay
     uniform-[Run] and keep the SoA kernel. *)
  let ctxt_for d tenant =
    match Hashtbl.find d.ctxts tenant with
    | c -> c
    | exception Not_found ->
      let c = Rmt.Ctxt.create () in
      Hashtbl.replace d.ctxts tenant c;
      ignore
        (Rmt.Table.insert d.table ~patterns:[| Rmt.Table.Eq tenant |] (Rmt.Table.Run d.vm)
          : Rmt.Table.entry_id);
      d.tenant_order <- tenant :: d.tenant_order;
      c

  (* Fill batch slots from event [i] until the stream ends or a tenant
     repeats within this chunk (its context is already aliased into an
     earlier slot).  Returns the first unconsumed event index.  The
     chunk-id stamp at [chunk_key] is the duplicate test — no scratch
     set, no allocation. *)
  let rec fill_chunk d tenants pages n i chunk s =
    if i >= n then i
    else begin
      let tenant = Array.unsafe_get tenants i in
      let ctxt = ctxt_for d tenant in
      if Rmt.Ctxt.get ctxt chunk_key = chunk then i
      else begin
        Rmt.Ctxt.set ctxt chunk_key chunk;
        Rmt.Ctxt.set ctxt Rkd.Hooks.key_pid tenant;
        Rmt.Ctxt.set ctxt Rkd.Hooks.key_page (Array.unsafe_get pages i);
        d.batch.Rmt.Batch.ctxts.(s) <- ctxt;
        fill_chunk d tenants pages n (i + 1) chunk (s + 1)
      end
    end

  (* Chunked dispatch: a chunk never holds the same tenant twice, so the
     instruction-major SoA kernel cannot interleave one context's reads
     and writes across slots — each tenant keeps scalar (sequential)
     semantics, and therefore the same results for any batch boundaries
     and any shard count.  (Prefetch_rmt.on_access_batch makes the same
     duplicate-pid exclusion.) *)
  let rec run_from d tenants pages n i =
    if i < n then begin
      let chunk = d.chunk_cell.(0) + 1 in
      d.chunk_cell.(0) <- chunk;
      let stop = fill_chunk d tenants pages n i chunk 0 in
      let b = d.batch in
      Rmt.Batch.set_n b (stop - i);
      ignore (Rmt.Control.fire_batch d.control ~hook b : bool);
      (* Fold each slot's decision into its tenant's rolling digest.  Per
         tenant the fold is FIFO-ordered (rings preserve per-producer
         order, tenants are shard-pinned), and the cross-tenant combine
         in [digest] is an order-independent xor — so the fleet digest is
         identical for any shard count and any batch boundaries. *)
      for s = 0 to stop - i - 1 do
        let ctxt = b.Rmt.Batch.ctxts.(s) in
        Rmt.Ctxt.set ctxt digest_key
          (mix (Rmt.Ctxt.get ctxt digest_key) b.Rmt.Batch.results.(s))
      done;
      run_from d tenants pages n stop
    end

  let run d ~n ~tenants ~pages ~now =
    d.now_cell.(0) <- now;
    run_from d tenants pages n 0

  let digest d =
    List.fold_left
      (fun acc tenant ->
        acc lxor mix tenant (Rmt.Ctxt.get (Hashtbl.find d.ctxts tenant) digest_key))
      0 d.tenant_order

  let tenant_count d = Hashtbl.length d.ctxts
  let control d = d.control
  let table d = d.table
  let vm d = d.vm
  let breaker d = d.breaker

  let sink d =
    { run = (fun ~n ~tenants ~pages ~now -> run d ~n ~tenants ~pages ~now);
      control = Some d.control;
      digest = (fun () -> digest d) }
end
