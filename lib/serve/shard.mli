(** One serving shard: a tenant partition's SPSC rings, drain scratch,
    pinned datapath state and telemetry (DESIGN.md section 14).

    A shard is driven by exactly one consumer — either a domain-pinned
    worker ({!Serving.start}) or the caller's own domain in inline mode —
    and receives events through one {!Ring} per producer, so no queue
    ever has two writers or two readers.  The datapath itself is a
    {!sink} callback; {!Datapath} is the standard one. *)

type sink = {
  run : n:int -> tenants:int array -> pages:int array -> now:int -> unit;
      (** Serve the first [n] slots of the column arrays.  Called only
          from the shard's consumer domain; the arrays are the shard's
          scratch and are overwritten by the next batch. *)
  control : Rmt.Control.t option;
      (** The shard-private control plane, when the sink has one — the
          front-end routes canary installs and breaker commands here. *)
  digest : unit -> int;
      (** Order-insensitive fleet digest of the decisions served so far
          (0 when the sink does not track one). *)
}

type t

val create :
  index:int -> producers:int -> ring_capacity:int -> max_batch:int -> sink -> t
(** Registers per-shard counters [rmt.serve.<index>.{invocations,batches}]
    and histogram [rmt.serve.<index>.queue_ns], plus the shared
    [rmt.serve.latency_ns] histogram every shard feeds. *)

val index : t -> int
val name : t -> string
(** Telemetry namespace, [rmt.serve.<index>]. *)

val ring : t -> int -> Ring.t
(** [ring t producer] — the SPSC ring producer [producer] pushes to. *)

val producers : t -> int
val control : t -> Rmt.Control.t option
val digest : t -> int
val served : t -> int
(** Events drained into the sink so far.  Worker-owned; exact once the
    shard's consumer is quiescent. *)

val drain_once : t -> now:int -> int
(** One sweep on the consumer domain: run posted control commands, then
    drain up to [max_batch] events from each producer ring into the
    sink.  Returns the number of events served.  Allocation-free in the
    steady state (warm tenants, no pending commands). *)

val post : t -> (unit -> unit) -> unit
(** Queue a control command (canary install, breaker trip, …) to run on
    the shard's consumer domain before its next batch; wakes the worker
    if parked.  Safe from any domain. *)

val park : t -> should_stop:(unit -> bool) -> unit
(** Block the consumer until woken.  Publishes the parked flag, then
    re-checks [should_stop], the rings and the command queue under the
    park mutex ({!Protocol.should_sleep}) before sleeping, so a
    concurrent push or {!post} cannot be lost.  Exception-safe: a raise
    out of [should_stop] (or a spurious-wakeup path) still clears the
    parked flag and releases the mutex.  Consumer domain only. *)

val wake : t -> unit
(** Producer-side nudge: a single atomic load unless the worker is
    actually parked. *)

val wake_force : t -> unit
(** Unconditional wake (shutdown path): serializes on the park mutex so
    a worker about to sleep cannot miss it. *)

(** {2 Standard datapath sink}

    A shard-private {!Rmt.Control} running the prefetch collect program
    behind a per-shard circuit breaker: per-tenant execution-context
    slabs and exact-match table entries are created on first touch, every
    batch goes through {!Rmt.Control.fire_batch} (uniform-[Run] batches
    keep the SoA kernel), and each slot's decision folds into a rolling
    per-tenant digest stored at a reserved dense context key. *)

module Datapath : sig
  type dp

  val create : view_ns:string -> max_batch:int -> unit -> dp
  (** [view_ns] namespaces the shard's control-plane registry views
      ([<view_ns>.breaker.*], [<view_ns>.program.*]). *)

  val sink : dp -> sink
  val control : dp -> Rmt.Control.t
  val table : dp -> Rmt.Table.t
  val vm : dp -> Rmt.Vm.t

  (** The shard's circuit breaker; open = the shard is serving
      {!fallback_marker} and a staged rollout must not enter it. *)
  val breaker : dp -> Rmt.Breaker.t
  val digest : dp -> int
  (** Xor over tenants of their rolling decision digests: identical for
      any shard count and any batch boundaries (per-tenant FIFO is
      preserved end to end; the cross-tenant combine is commutative). *)

  val tenant_count : dp -> int

  val hook : string
  (** The hook the serve table is attached to ([lookup_swap_cache]). *)

  val program_name : string
  val fallback_marker : int
  (** Per-slot result while the shard's breaker serves the stock
      fallback; distinguishable from any real collect result. *)

  val digest_key : int
end
