let () =
  (* Ambient RKD_FAULTS plans would perturb exact-value assertions; the
     failsafe suite re-arms faults through scoped plans instead. *)
  Rmt.Fault.suppress_default ();
  Alcotest.run "rkd"
    (List.concat
       [ Test_fixed.suite;
         Test_kml.suite;
         Test_models.suite;
         Test_rmt_vm.suite;
         Test_datapath.suite;
         Test_absint.suite;
         Test_rmt_infra.suite;
         Test_ksim.suite;
         Test_sched.suite;
         Test_rkd.suite;
         Test_misc.suite;
         Test_encoding.suite;
         Test_extensions.suite;
         Test_more.suite;
         Test_par.suite;
         Test_obs.suite;
         Test_net.suite;
         Test_failsafe.suite;
         Test_batch.suite;
         Test_serve.suite;
         Test_fleet.suite;
         Test_analysis.suite ])
