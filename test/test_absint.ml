(* Abstract-interpreter soundness tests (ISSUE PR 3).

   Three layers:
   - interval transfer functions cross-checked exhaustively against
     [Insn.eval_alu]/[eval_cond] on corner intervals (min_int/max_int
     endpoints, the [land 62] shift mask, division/modulo by zero);
   - hand-built programs exercising the proof extraction, the strict-mode
     and privacy-flow verifier violations, and guard-elision
     observability (the dense fast path must still count reads);
   - the 5000-program differential fuzzer from [Rmt.Fuzz]. *)

open Rmt

let corner_vals =
  [ min_int; min_int + 1; min_int / 2; -1000; -64; -63; -2; -1; 0; 1; 2; 7; 62; 63; 64;
    1000; max_int / 2; max_int - 1; max_int ]

let corner_intervals =
  List.concat_map
    (fun lo ->
      List.filter_map
        (fun hi -> if lo <= hi then Some (Absint.Interval.make lo hi) else None)
        corner_vals)
    corner_vals

let samples_in (iv : Absint.Interval.t) =
  List.filter (fun v -> Absint.Interval.mem v iv) corner_vals

let all_alu_ops : Insn.alu list =
  [ Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr; Min; Max ]

let all_conds : Insn.cond list = [ Eq; Ne; Lt; Le; Gt; Ge ]

(* Soundness of every ALU transfer function: for corner intervals [a], [b]
   and concrete points inside them, [eval_alu op x y] must land in
   [forward_alu op a b].  The value pool makes this cover overflow at both
   infinities, [min_int / -1], division/modulo by zero, and shift amounts
   on both sides of the [land 62] mask (including 63 and 64, whose bit 0
   is outside the mask). *)
let test_forward_alu_sound () =
  let checked = ref 0 in
  List.iter
    (fun op ->
      List.iter
        (fun a ->
          let xs = samples_in a in
          List.iter
            (fun b ->
              let r = Absint.Interval.forward_alu op a b in
              List.iter
                (fun x ->
                  List.iter
                    (fun y ->
                      let v = Insn.eval_alu op x y in
                      if not (Absint.Interval.mem v r) then
                        Alcotest.failf "%s: %d op %d = %d outside %a (a=%a b=%a)"
                          (match op with
                           | Insn.Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
                           | Mod -> "mod" | And -> "and" | Or -> "or" | Xor -> "xor"
                           | Shl -> "shl" | Shr -> "shr" | Min -> "min" | Max -> "max")
                          x y v Absint.Interval.pp r Absint.Interval.pp a Absint.Interval.pp b;
                      incr checked)
                    (samples_in b))
                xs)
            corner_intervals)
        corner_intervals)
    all_alu_ops;
  Alcotest.(check bool) "checked many points" true (!checked > 1_000_000)

(* Branch refinement: whenever the condition holds on concrete points the
   refinement must exist and contain them; [negate_cond] must be the exact
   boolean complement. *)
let test_refine_sound () =
  List.iter
    (fun c ->
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              Alcotest.(check bool) "negate_cond complements"
                (not (Insn.eval_cond c x y))
                (Insn.eval_cond (Absint.Interval.negate_cond c) x y))
            corner_vals)
        corner_vals;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              match Absint.Interval.refine c a b with
              | Some (a', b') ->
                List.iter
                  (fun x ->
                    List.iter
                      (fun y ->
                        if Insn.eval_cond c x y then begin
                          if not (Absint.Interval.mem x a' && Absint.Interval.mem y b') then
                            Alcotest.failf "refine lost (%d, %d): %a / %a" x y
                              Absint.Interval.pp a' Absint.Interval.pp b'
                        end)
                      (samples_in b))
                  (samples_in a)
              | None ->
                (* infeasible: no concrete pair may satisfy the condition *)
                List.iter
                  (fun x ->
                    List.iter
                      (fun y ->
                        if Insn.eval_cond c x y then
                          Alcotest.failf "refine claims infeasible but %d ? %d holds" x y)
                      (samples_in b))
                  (samples_in a))
            corner_intervals)
        corner_intervals)
    all_conds

let test_interval_basics () =
  let open Absint.Interval in
  Alcotest.(check bool) "const is_const" true (is_const (const 7));
  Alcotest.(check bool) "top not const" false (is_const top);
  Alcotest.(check bool) "join contains both" true
    (mem (-3) (join (const (-3)) (const 9)) && mem 9 (join (const (-3)) (const 9)));
  (match meet (make 0 10) (make 5 20) with
   | Some m -> Alcotest.(check bool) "meet" true (equal m (make 5 10))
   | None -> Alcotest.fail "meet of overlapping intervals");
  Alcotest.(check bool) "meet disjoint" true (meet (make 0 1) (make 3 4) = None);
  let w = widen (make 0 10) (make 0 11) in
  Alcotest.(check bool) "widen unstable hi" true (mem max_int w && mem 0 w);
  Alcotest.check_raises "make validates" (Invalid_argument "Absint.Interval.make: lo > hi")
    (fun () -> ignore (make 1 0));
  (* min_int / -1 wraps to min_int in eval_alu; the transfer must cover it *)
  Alcotest.(check bool) "min_int / -1" true
    (mem (Insn.eval_alu Insn.Div min_int (-1)) (forward_alu Insn.Div (const min_int) (const (-1))));
  Alcotest.(check bool) "div by zero is 0" true
    (mem 0 (forward_alu Insn.Div (const 5) (make (-1) 1)));
  Alcotest.(check bool) "mod by zero is 0" true
    (mem 0 (forward_alu Insn.Mod (const 5) (make (-1) 1)));
  (* shift masks: 63 land 62 = 62, 64 land 62 = 0 *)
  Alcotest.(check bool) "shl 63 wraps via mask" true
    (mem (1 lsl 62) (forward_alu Insn.Shl (const 1) (const 63)));
  Alcotest.(check bool) "shl 64 is identity via mask" true
    (mem 1 (forward_alu Insn.Shl (const 1) (const 64)))

(* ---------------- pp totality ---------------- *)

let all_violations : Verifier.violation list =
  [ Empty_program;
    Code_too_long 9999;
    Vmem_too_large 9999;
    Const_pool_too_large 9999;
    Bad_register { pc = 1; reg = 77 };
    Bad_map_slot { pc = 1; slot = 3 };
    Bad_model_slot { pc = 1; slot = 3 };
    Bad_prog_slot { pc = 1; slot = 3 };
    Bad_helper { pc = 1; id = 42 };
    Bad_const { pc = 1; id = 4 };
    Negative_ctxt_key { pc = 1; key = -2 };
    Vmem_out_of_bounds { pc = 1 };
    Backward_jump { pc = 3; target = 1 };
    Jump_out_of_range { pc = 3; target = 99 };
    Jump_escapes_loop { pc = 3; target = 9 };
    Bad_rep { pc = 0; count = -1; body_len = 0 };
    Falls_off_end { pc = 5 };
    Steps_exceeded { worst_case = 100; allowed = 10 };
    Uninitialized_register { pc = 2; reg = 4 };
    Missing_privacy_budget { pc = 2; helper = 3 };
    Model_arity_mismatch { pc = 2; slot = 0; expected = 3; got = 2 };
    Ml_cost_exceeded { cost = Kml.Model_cost.zero };
    Ctxt_key_unproven { pc = 2; reg = 1 };
    Vmem_index_unproven { pc = 2 };
    Privacy_flow { pc = 2; reg = 6 } ]

let test_pp_violation_total () =
  List.iter
    (fun v ->
      let s = Verifier.violation_to_string v in
      Alcotest.(check bool) "nonempty rendering" true (String.length s > 0))
    all_violations;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ctxt key message" true
    (contains (Verifier.violation_to_string (Ctxt_key_unproven { pc = 2; reg = 1 })) "not proven");
  Alcotest.(check bool) "window message" true
    (contains (Verifier.violation_to_string (Vmem_index_unproven { pc = 2 })) "not proven");
  Alcotest.(check bool) "privacy message" true
    (contains
       (Verifier.violation_to_string (Privacy_flow { pc = 2; reg = 6 }))
       "privacy budget")

(* ---------------- verifier integration ---------------- *)

let helpers = Helper.with_defaults ()

let check ?strict ?(capabilities = []) ?(map_specs = []) ?(vmem_size = 0) code =
  Verifier.check ?strict ~helpers ~model_costs:[||]
    (Program.make ~name:"t" ~vmem_size ~map_specs ~capabilities code)

let expect_ok name = function
  | Ok (r : Verifier.report) -> r
  | Error v -> Alcotest.failf "%s: unexpectedly rejected: %s" name (Verifier.violation_to_string v)

let array_map cap = { Map_store.kind = Map_store.Array_map; capacity = cap }

let test_strict_mode () =
  let open Insn in
  (* dynamic key from the context: interval is top, guard must stay *)
  let unproven_key =
    [ Ld_imm (0, 0); Ld_ctxt_k (1, 0); Ld_imm (2, 5); St_ctxt_r (1, 2); Exit ]
  in
  ignore (expect_ok "default admits guarded key" (check unproven_key));
  (match check ~strict:true unproven_key with
   | Error (Verifier.Ctxt_key_unproven { pc = 3; reg = 1 }) -> ()
   | Error v -> Alcotest.failf "wrong violation: %s" (Verifier.violation_to_string v)
   | Ok _ -> Alcotest.fail "strict mode admitted unproven dynamic key");
  (* masking the key makes strict mode pass and earns the dense proof *)
  let masked =
    [ Ld_imm (0, 0); Ld_ctxt_k (1, 0); Alu_imm (And, 1, 63); Ld_imm (2, 5); St_ctxt_r (1, 2);
      Exit ]
  in
  let r = expect_ok "strict admits masked key" (check ~strict:true masked) in
  Alcotest.(check bool) "dense proof at store" true (Absint.Proof.key_dense r.Verifier.proof.(4));
  (* unproven vector window *)
  let unproven_window =
    [ Ld_imm (0, 0); Ld_ctxt_k (1, 0); Vec_ld_map (0, 0, 1, 4); Exit ]
  in
  ignore
    (expect_ok "default admits guarded window"
       (check ~map_specs:[ array_map 16 ] ~vmem_size:4 unproven_window));
  (match check ~strict:true ~map_specs:[ array_map 16 ] ~vmem_size:4 unproven_window with
   | Error (Verifier.Vmem_index_unproven { pc = 2 }) -> ()
   | Error v -> Alcotest.failf "wrong violation: %s" (Verifier.violation_to_string v)
   | Ok _ -> Alcotest.fail "strict mode admitted unproven window");
  let masked_window =
    [ Ld_imm (0, 0); Ld_ctxt_k (1, 0); Alu_imm (And, 1, 7); Vec_ld_map (0, 0, 1, 4); Exit ]
  in
  let r =
    expect_ok "strict admits masked window"
      (check ~strict:true ~map_specs:[ array_map 16 ] ~vmem_size:4 masked_window)
  in
  Alcotest.(check bool) "window proof" true
    (Absint.Proof.window_in_bounds r.Verifier.proof.(3))

let test_privacy_flow () =
  let open Insn in
  let leak =
    [ Ld_imm (0, 0); Ld_imm (1, 3); Ld_ctxt_k (2, 5); Map_update (0, 1, 2); Exit ]
  in
  (match check ~map_specs:[ array_map 16 ] leak with
   | Error (Verifier.Privacy_flow { pc = 3; reg = 2 }) -> ()
   | Error v -> Alcotest.failf "wrong violation: %s" (Verifier.violation_to_string v)
   | Ok _ -> Alcotest.fail "tainted sink admitted without budget");
  (* a declared budget legitimises the flow *)
  ignore
    (expect_ok "budget admits flow"
       (check ~map_specs:[ array_map 16 ]
          ~capabilities:[ Program.Privacy_budget { epsilon_milli = 100 } ]
          leak));
  (* map contents are already persisted: reading them back is clean *)
  let readback =
    [ Ld_imm (0, 0); Ld_imm (1, 3); Ld_ctxt_k (2, 5); Map_lookup (3, 0, 1);
      Map_update (0, 1, 3); Exit ]
  in
  ignore (expect_ok "map readback is clean" (check ~map_specs:[ array_map 16 ] readback));
  (* arithmetic on tainted data stays tainted *)
  let laundered =
    [ Ld_imm (0, 0); Ld_imm (1, 3); Ld_ctxt_k (2, 5); Alu_imm (Mul, 2, 7); Alu (Add, 2, 1);
      Ring_push (0, 2); Exit ]
  in
  (match
     check ~map_specs:[ { Map_store.kind = Map_store.Ring_buffer; capacity = 8 } ] laundered
   with
   | Error (Verifier.Privacy_flow { pc = 5; reg = 2 }) -> ()
   | Error v -> Alcotest.failf "wrong violation: %s" (Verifier.violation_to_string v)
   | Ok _ -> Alcotest.fail "laundered taint admitted")

let test_dead_code_tightens_worst_case () =
  let open Insn in
  let r =
    expect_ok "dead branch"
      (check [ Ld_imm (0, 1); Jmp 2; Ld_imm (0, 2); Ld_imm (0, 3); Exit ])
  in
  Alcotest.(check int) "only reachable pcs counted" 3 r.Verifier.worst_case_steps;
  Alcotest.(check bool) "dead pc unproven-reachable" false
    (Absint.Proof.reachable r.Verifier.proof.(2));
  (* infeasible conditional: r1 = 4 so the Lt 0 branch cannot be taken *)
  let r =
    expect_ok "infeasible branch"
      (check
         [ Ld_imm (0, 1); Ld_imm (1, 4); Jcond_imm (Lt, 1, 0, 1); Jmp 1; Ld_imm (0, 9); Exit ])
  in
  Alcotest.(check bool) "infeasible target dead" false
    (Absint.Proof.reachable r.Verifier.proof.(4))

(* Guard elision must be unobservable: same results and the same context
   read count whether or not the engines hold proofs. *)
let test_elision_unobservable () =
  let open Insn in
  let prog =
    Program.make ~name:"dense" ~vmem_size:4
      [ Ld_imm (1, 70); Alu_imm (And, 1, 63); Ld_ctxt (0, 1); Vec_ld_ctxt (0, 4, 3);
        Vec_ld_reg (2, 1); Alu (Add, 0, 2); St_ctxt (9, 0); Exit ]
  in
  let report = expect_ok "dense prog" (Verifier.check ~helpers ~model_costs:[||] prog) in
  Alcotest.(check bool) "Ld_ctxt dense" true (Absint.Proof.key_dense report.Verifier.proof.(2));
  Alcotest.(check bool) "Vec_ld_ctxt dense" true
    (Absint.Proof.key_dense report.Verifier.proof.(3));
  Alcotest.(check bool) "St_ctxt dense" true (Absint.Proof.key_dense report.Verifier.proof.(6));
  let store = Model_store.create () in
  let run ~proofs =
    let loaded =
      match proofs with
      | Some p -> Loaded.link ~proofs:p ~store ~helpers ~maps:[||] ~models:[||] prog
      | None -> Loaded.link ~store ~helpers ~maps:[||] ~models:[||] prog
    in
    let ctxt = Ctxt.of_list [ (6, 42); (5, 7) ] in
    let o = Interp.run loaded ~ctxt ~now:(fun () -> 0) in
    let oj =
      Jit.run (Jit.compile loaded) ~ctxt:(Ctxt.of_list [ (6, 42); (5, 7) ]) ~now:(fun () -> 0)
    in
    Alcotest.(check int) "interp = jit" o.Interp.result oj.Interp.result;
    let reads = Ctxt.reads ctxt in
    let stored = Ctxt.get ctxt 9 in
    (o.Interp.result, reads, stored)
  in
  let elided = run ~proofs:(Some report.Verifier.proof) in
  let guarded = run ~proofs:None in
  Alcotest.(check (triple int int int)) "elided == guarded (result, reads, stored)" guarded
    elided;
  let _, reads, _ = elided in
  (* 1 Ld_ctxt + 3 Vec_ld_ctxt: the dense fast path still counts reads *)
  Alcotest.(check int) "read counter maintained" 4 reads

let test_analyze_facts () =
  let open Insn in
  let prog =
    Program.make ~name:"facts"
      [ Ld_imm (0, 10); Ld_imm (1, 3); Alu (Add, 0, 1); Rep (5, 1); Alu_imm (Add, 1, 2);
        Exit ]
  in
  let ai = Absint.analyze ~helpers prog in
  (match ai.Absint.facts.(2) with
   | Some f ->
     Alcotest.(check bool) "r0 = 10 before add" true
       (Absint.Interval.equal f.Absint.regs.(0) (Absint.Interval.const 10))
   | None -> Alcotest.fail "pc 2 reachable");
  (match ai.Absint.facts.(5) with
   | Some f ->
     (* loop unrolled abstractly: r1 = 3 + 5*2 = 13 exactly *)
     Alcotest.(check bool) "r1 after rep" true
       (Absint.Interval.equal f.Absint.regs.(1) (Absint.Interval.const 13))
   | None -> Alcotest.fail "pc 5 reachable");
  let s = Format.asprintf "%a" (fun fmt () -> Absint.pp fmt ai prog) () in
  Alcotest.(check bool) "pp renders" true (String.length s > 0);
  (match ai.Absint.facts.(2) with
   | Some f ->
     let s = Format.asprintf "%a" Absint.pp_fact f in
     Alcotest.(check bool) "pp_fact renders" true (String.length s > 0)
   | None -> ())

let test_fuzz () =
  let stats = Fuzz.run ~seed:0xAB51 ~trials:5000 () in
  Alcotest.(check int) "all trials ran" 5000 stats.Fuzz.trials;
  Alcotest.(check bool) "most programs accepted and executed" true (stats.Fuzz.accepted > 4000);
  Alcotest.(check bool) "interval claims exercised" true (stats.Fuzz.claims_checked > 1_000_000);
  (* The batch lane runs at least once per accepted program (batch of 1),
     plus three more slots when the program admits the SoA kernel. *)
  Alcotest.(check bool) "batch lane exercised" true
    (stats.Fuzz.batch_slots_checked >= stats.Fuzz.accepted)

let suite =
  [ ( "absint",
      [ Alcotest.test_case "interval basics" `Quick test_interval_basics;
        Alcotest.test_case "forward_alu sound on corners" `Quick test_forward_alu_sound;
        Alcotest.test_case "refine sound on corners" `Quick test_refine_sound;
        Alcotest.test_case "pp_violation total" `Quick test_pp_violation_total;
        Alcotest.test_case "strict mode" `Quick test_strict_mode;
        Alcotest.test_case "privacy flow" `Quick test_privacy_flow;
        Alcotest.test_case "dead code tightens worst case" `Quick
          test_dead_code_tightens_worst_case;
        Alcotest.test_case "elision unobservable" `Quick test_elision_unobservable;
        Alcotest.test_case "analyze facts" `Quick test_analyze_facts;
        Alcotest.test_case "differential fuzz (5000 programs)" `Quick test_fuzz ] ) ]
