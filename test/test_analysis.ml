(* Tests for lib/analysis (DESIGN.md section 15): the small-scope model
   checker over the serving-plane protocols (real protocols exhaustively
   pass, deliberately broken variants yield counterexample traces, the
   sleep-set reduction preserves verdicts and state counts), the
   absint-powered lint (zero findings on every shipped program, every
   seeded-defect mutant caught by its expected rule), and the
   Control.install analysis gate in both warn and deny modes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

module Mc = Analysis.Mc
module Models = Analysis.Mc_models
module Lint = Analysis.Lint
module Corpus = Analysis.Corpus

(* ---------------- Model checker ---------------- *)

let real_models () =
  [ Models.ring ~capacity:2 ~pushes:4 ~max_batch:2 ();
    Models.ring ~capacity:4 ~pushes:6 ~max_batch:2 ();
    Models.shard ~pushes:3 ~posts:1 () ]

let test_mc_real_protocols_pass () =
  List.iter
    (fun model ->
      let module M = (val model : Mc.MODEL) in
      match Mc.run model with
      | Mc.Pass stats ->
        check_bool (M.name ^ " explores states") true (stats.Mc.states > 0)
      | Mc.Fail _ as outcome ->
        Alcotest.failf "%s: %a" M.name Mc.pp_outcome outcome)
    (real_models ())

(* The sleep-set reduction prunes transitions, never states: verdicts
   and visited state counts are identical with the reduction off, and
   the reduction only ever lowers the transition count. *)
let test_mc_reduction_preserves_state_space () =
  List.iter
    (fun model ->
      let module M = (val model : Mc.MODEL) in
      let reduced = Mc.run ~reduction:true model in
      let full = Mc.run ~reduction:false model in
      check_bool (M.name ^ " verdicts agree") true
        (Mc.verdict_name reduced = Mc.verdict_name full);
      check_int (M.name ^ " same states either way") (Mc.stats_of full).Mc.states
        (Mc.stats_of reduced).Mc.states;
      check_bool (M.name ^ " reduction does not add transitions") true
        ((Mc.stats_of reduced).Mc.transitions <= (Mc.stats_of full).Mc.transitions);
      check_int (M.name ^ " full run skips nothing") 0 (Mc.stats_of full).Mc.sleep_skips)
    (real_models ())

(* Negative tests: each deliberately broken protocol variant must yield
   a counterexample.  The trace is printed when the expectation is
   violated, and sanity-checked (nonempty, ends at the violation) when
   it holds. *)
let broken_variants =
  [ ("lost push",
     fun () -> Models.ring ~bug:Models.Stale_cached_head ~capacity:2 ~pushes:3 ~max_batch:2 ());
    ("quiescent drain incomplete",
     fun () -> Models.ring ~bug:Models.No_drain_refresh ~capacity:2 ~pushes:3 ~max_batch:2 ());
    ("lost wake", fun () -> Models.shard ~bug:Models.Dropped_wake ~pushes:2 ~posts:1 ()) ]

let test_mc_broken_variants_fail () =
  List.iter
    (fun (expected_property, make) ->
      let model = make () in
      let module M = (val model : Mc.MODEL) in
      match Mc.run model with
      | Mc.Pass _ as outcome ->
        Alcotest.failf "%s: expected a '%s' counterexample, got %a" M.name
          expected_property Mc.pp_outcome outcome
      | Mc.Fail { property; trace; _ } ->
        if not (contains ~needle:expected_property property) then
          Alcotest.failf "%s: expected property '%s', got '%s'" M.name expected_property
            property;
        check_bool (M.name ^ " trace is nonempty") true (trace <> []))
    broken_variants

(* Without the sleep-set reduction the same violations must still be
   found — the reduction is an optimization, not part of the spec. *)
let test_mc_broken_variants_fail_unreduced () =
  List.iter
    (fun (_, make) ->
      let model = make () in
      let module M = (val model : Mc.MODEL) in
      match Mc.run ~reduction:false model with
      | Mc.Fail _ -> ()
      | Mc.Pass _ -> Alcotest.failf "%s: unreduced run missed the violation" M.name)
    broken_variants

let test_mc_max_states_bound () =
  match Mc.run ~max_states:3 (Models.ring ~capacity:4 ~pushes:6 ~max_batch:2 ()) with
  | Mc.Fail { property; _ } ->
    check_bool "reports the bound" true (contains ~needle:"state space exceeded" property)
  | Mc.Pass _ -> Alcotest.fail "a 3-state bound cannot cover the ring model"

(* ---------------- Lint ---------------- *)

let helpers = Rmt.Helper.with_defaults ()

let test_lint_clean_corpus () =
  let progs = Corpus.clean () in
  check_bool "corpus covers the shipped programs" true (List.length progs >= 9);
  List.iter
    (fun (name, prog) ->
      match Lint.analyze ~helpers prog with
      | Error e -> Alcotest.failf "%s: did not verify: %s" name e
      | Ok [] -> ()
      | Ok findings ->
        Alcotest.failf "%s: false positive(s): %s" name
          (String.concat "; " (List.map (Format.asprintf "%a" Lint.pp_finding) findings)))
    progs

let test_lint_mutation_corpus () =
  let mutants = Corpus.mutants () in
  check_bool "at least 12 seeded defects" true (List.length mutants >= 12);
  List.iter
    (fun (name, expected, prog) ->
      match Lint.analyze ~helpers prog with
      | Error e -> Alcotest.failf "%s: did not verify: %s" name e
      | Ok findings ->
        if not (List.exists (fun f -> f.Lint.rule = expected) findings) then
          Alcotest.failf "%s: expected %s, got [%s]" name expected
            (String.concat "; " (List.map (fun f -> f.Lint.rule) findings)))
    mutants

let find_mutant name =
  let _, _, prog = List.find (fun (n, _, _) -> n = name) (Corpus.mutants ()) in
  prog

let test_lint_severity_and_json () =
  (match Lint.analyze ~helpers (find_mutant "m09_unclean_map_read") with
   | Ok [ f ] ->
     check_bool "taint laundering is deny-severity" true (f.Lint.severity = Lint.Deny)
   | Ok fs -> Alcotest.failf "m09: expected one finding, got %d" (List.length fs)
   | Error e -> Alcotest.failf "m09: %s" e);
  match Lint.analyze ~helpers (find_mutant "m01_dead_store") with
  | Ok findings ->
    let json = Lint.findings_to_json ~program:"m01" findings in
    check_bool "json names the program" true (contains ~needle:{|{"program":"m01"|} json);
    check_bool "json carries the rule" true (contains ~needle:{|"rule":"dead-store"|} json)
  | Error e -> Alcotest.failf "m01: %s" e

(* ---------------- Control.install gate ---------------- *)

(* m02 passes the full verifier (no models, no maps) but carries a dead
   store: deny mode must refuse the install, warn mode must admit it
   and count the findings, and clearing the gate restores stock
   behavior. *)
let test_install_gate_modes () =
  let prog = find_mutant "m02_dead_store_overwrite" in
  let control = Rmt.Control.create () in
  Rmt.Control.set_install_gate control (Some (Lint.install_gate ~mode:`Deny ()));
  (match Rmt.Control.install control prog with
   | Ok _ -> Alcotest.fail "deny gate admitted a program with findings"
   | Error e ->
     check_bool "deny error names the gate" true
       (contains ~needle:"analysis gate rejected" e));
  check_bool "denied program is not registered" true
    (Rmt.Control.find_program control prog.Rmt.Program.name = None);
  Rmt.Control.set_install_gate control (Some (Lint.install_gate ~mode:`Warn ()));
  (match Rmt.Control.install control prog with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "warn gate refused the install: %s" e);
  Rmt.Control.set_install_gate control None;
  match Rmt.Control.install control prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ungated install failed: %s" e

(* A clean program sails through a deny gate. *)
let test_install_gate_clean_program () =
  let control = Rmt.Control.create () in
  Rmt.Control.set_install_gate control (Some (Lint.install_gate ~mode:`Deny ()));
  let prog =
    let _, p = List.find (fun (n, _) -> n = "chaos_prog") (Corpus.clean ()) in
    p
  in
  match Rmt.Control.install control prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deny gate refused a clean program: %s" e

let suite =
  [ ( "analysis",
      [ Alcotest.test_case "mc: real protocols pass exhaustively" `Quick
        test_mc_real_protocols_pass;
      Alcotest.test_case "mc: sleep-set reduction preserves the state space" `Quick
        test_mc_reduction_preserves_state_space;
      Alcotest.test_case "mc: broken variants yield counterexample traces" `Quick
        test_mc_broken_variants_fail;
      Alcotest.test_case "mc: broken variants fail without reduction too" `Quick
        test_mc_broken_variants_fail_unreduced;
      Alcotest.test_case "mc: max-states bound aborts with a pseudo-property" `Quick
        test_mc_max_states_bound;
      Alcotest.test_case "lint: every shipped program is clean" `Quick
        test_lint_clean_corpus;
      Alcotest.test_case "lint: every seeded defect is caught" `Quick
        test_lint_mutation_corpus;
      Alcotest.test_case "lint: severity and JSON export" `Quick
        test_lint_severity_and_json;
      Alcotest.test_case "gate: deny refuses, warn admits, none restores" `Quick
        test_install_gate_modes;
      Alcotest.test_case "gate: clean programs pass a deny gate" `Quick
        test_install_gate_clean_program ] ) ]
