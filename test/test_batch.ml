(* Tests for batched invocation and proof-specialized codegen artifacts
   (DESIGN.md section 13): SoA-kernel vs scalar equivalence, per-slot
   trap containment under fault injection, batched tables and protected
   hooks, steady-state allocation, the kml batch kernels, compile-time
   resource reports/budgets, and the batched prefetch entry point. *)

open Rmt

let now0 () = 0

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- Fixtures ---------------- *)

let nf = 6

(* A small trained+quantized MLP shared by the model-backed fixtures. *)
let make_qmlp () =
  let rng = Kml.Rng.create 17 in
  let ds = Kml.Dataset.create ~n_features:nf ~n_classes:4 in
  for _ = 1 to 128 do
    let features = Array.init nf (fun _ -> Kml.Rng.int rng 64) in
    Kml.Dataset.add ds { Kml.Dataset.features; label = features.(0) land 3 }
  done;
  let mlp = Kml.Mlp.train ~params:{ Kml.Mlp.default_params with epochs = 2 } ~rng ds in
  Kml.Quantize.Qmlp.of_mlp mlp

(* SoA-eligible program: straight-line, context + vmem + one CALL_ML. *)
let qmlp_program ~name =
  let b = Builder.create ~name ~vmem_size:nf () in
  let (_ : int) = Builder.add_model b ~n_features:nf in
  Builder.emit b (Insn.Vec_ld_ctxt (0, 10, nf));
  Builder.emit b (Insn.Call_ml (0, 0, nf));
  Builder.emit b (Insn.St_ctxt (64, 0));
  Builder.emit b Insn.Exit;
  Builder.finish b ()

(* Not SoA-eligible: maps and a helper call force the per-slot fallback. *)
let map_program ~name =
  let open Insn in
  Program.make ~name
    ~map_specs:[ { Map_store.kind = Map_store.Hash_map; capacity = 64 } ]
    [ Ld_ctxt_k (1, 3);
      Alu_imm (And, 1, 31);
      Ld_imm (2, 7);
      Map_update (0, 1, 2);
      Map_lookup (4, 0, 1);
      Mov (1, 4);
      Call Helper.abs_val;
      St_ctxt (5, 0);
      Rep (8, 1);
      Alu_imm (Add, 0, 1);
      Exit ]

(* The strength-reduction stream from the bench: 3 reducible ALU sites
   (pow2 Mul/Div/Mod on a masked nonnegative register) + 1 fast Rep. *)
let spec_program ~name =
  let open Insn in
  Program.make ~name
    [ Ld_imm (0, 0);
      Ld_imm (1, 0);
      Rep (16, 8);
      Alu_imm (And, 1, 63);
      Ld_ctxt (2, 1);
      Alu_imm (And, 2, 4095);
      Alu_imm (Mul, 2, 8);
      Alu_imm (Div, 2, 4);
      Alu_imm (Mod, 2, 32);
      Alu (Add, 0, 2);
      Alu_imm (Add, 1, 1);
      Exit ]

let install_exn control ?resource_budget ?model_names prog =
  match Control.install control ?resource_budget ?model_names prog with
  | Ok vm -> vm
  | Error e -> Alcotest.failf "install %s: %s" prog.Program.name e

(* Two independent installs of the same program text (separate maps and
   scratch, shared model store), so a scalar reference run cannot leak
   state into the batched run under test. *)
let twin_installs ?(program = qmlp_program) ?(model_names = [ "q" ]) () =
  let control = Control.create ~engine:Vm.Jit_compiled () in
  let (_ : Model_store.handle) =
    Control.register_model control ~name:"q" (Model_store.Qmlp (make_qmlp ()))
  in
  let vma = install_exn control ~model_names (program ~name:"ref") in
  let vmb = install_exn control ~model_names (program ~name:"dut") in
  (control, vma, vmb)

let fill_slot ctxt s =
  Ctxt.clear ctxt;
  for i = 0 to nf - 1 do
    Ctxt.set ctxt (10 + i) (((s + i) * 13) land 63)
  done

let dump ctxt = List.sort compare (Ctxt.fold (fun k v acc -> (k, v) :: acc) ctxt [])

(* ---------------- SoA kernel vs scalar ---------------- *)

let test_soa_scalar_equivalence () =
  let _control, vma, vmb = twin_installs () in
  Alcotest.(check bool)
    "program admits the SoA kernel" true
    (Jit.batch_eligible (Jit.compile (Vm.loaded vma)));
  let k = 7 (* deliberately not a multiple of the matmul slot tile *) in
  let b = Batch.create ~capacity:k in
  for s = 0 to k - 1 do
    fill_slot b.Batch.ctxts.(s) s
  done;
  Vm.invoke_batch vmb b ~now:now0;
  for s = 0 to k - 1 do
    let ctxt = Ctxt.create () in
    fill_slot ctxt s;
    let o = Vm.invoke vma ~ctxt ~now:now0 in
    Alcotest.(check int) (Printf.sprintf "slot %d result" s) o.Interp.result b.Batch.results.(s);
    Alcotest.(check int) (Printf.sprintf "slot %d steps" s) o.Interp.steps b.Batch.steps.(s);
    Alcotest.(check int)
      (Printf.sprintf "slot %d denied" s)
      o.Interp.privacy_denied b.Batch.denied.(s);
    Alcotest.(check bool) (Printf.sprintf "slot %d no trap" s) true (b.Batch.traps.(s) = None);
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "slot %d final context" s)
      (dump ctxt) (dump b.Batch.ctxts.(s))
  done

let test_batch_of_one_fallback_equivalence () =
  let _control, vma, vmb = twin_installs ~program:map_program ~model_names:[] () in
  Alcotest.(check bool)
    "map program is not SoA-batchable" false
    (Jit.batch_eligible (Jit.compile (Vm.loaded vma)));
  let b = Batch.create ~capacity:1 in
  Ctxt.set b.Batch.ctxts.(0) 3 12;
  Vm.invoke_batch vmb b ~now:now0;
  let ctxt = Ctxt.of_list [ (3, 12) ] in
  let o = Vm.invoke vma ~ctxt ~now:now0 in
  Alcotest.(check int) "result" o.Interp.result b.Batch.results.(0);
  Alcotest.(check int) "steps" o.Interp.steps b.Batch.steps.(0);
  Alcotest.(check (list (pair int int))) "final context" (dump ctxt) (dump b.Batch.ctxts.(0))

(* ---------------- Per-slot trap containment ---------------- *)

let test_trap_isolation_fault_injection () =
  let _control, vma, vmb = twin_installs () in
  let k = 8 in
  let reference = Batch.create ~capacity:k in
  for s = 0 to k - 1 do
    fill_slot reference.Batch.ctxts.(s) s
  done;
  Vm.invoke_batch vma reference ~now:now0;
  let b = Batch.create ~capacity:k in
  for s = 0 to k - 1 do
    fill_slot b.Batch.ctxts.(s) s
  done;
  let traps_before = Vm.traps vmb in
  (* An active plan forces the per-slot fallback loop, where each slot
     draws its own injection decision. *)
  Fault.with_plan ~seed:0xbad5 [ (Fault.Engine_trap, 0.5) ] (fun () ->
      Vm.invoke_batch vmb b ~now:now0);
  let trapped = ref 0 in
  for s = 0 to k - 1 do
    match b.Batch.traps.(s) with
    | Some Interp.Trap_injected ->
      incr trapped;
      Alcotest.(check int) (Printf.sprintf "slot %d zeroed result" s) 0 b.Batch.results.(s);
      Alcotest.(check int) (Printf.sprintf "slot %d zeroed steps" s) 0 b.Batch.steps.(s)
    | Some t -> Alcotest.failf "slot %d: unexpected trap %s" s (Interp.trap_message t)
    | None ->
      Alcotest.(check int)
        (Printf.sprintf "surviving slot %d result" s)
        reference.Batch.results.(s) b.Batch.results.(s)
  done;
  Alcotest.(check bool) "some slots trapped" true (!trapped > 0);
  Alcotest.(check bool) "some slots survived" true (!trapped < k);
  Alcotest.(check int) "vm trap accounting" !trapped (Vm.traps vmb - traps_before)

let test_protected_hook_batch () =
  let control, _vma, vmb = twin_installs () in
  let table =
    Control.create_table control ~name:"t" ~match_keys:[| 0 |] ~default:(Table.Run vmb)
  in
  Control.attach control ~hook:"h" table;
  let breaker =
    Control.protect control ~hook:"h" ~programs:[ "dut" ]
      ~fallback:(fun ctxt -> Ctxt.get ctxt 0 + 100)
      ()
  in
  let k = 4 in
  let b = Batch.create ~capacity:k in
  for s = 0 to k - 1 do
    fill_slot b.Batch.ctxts.(s) s;
    Ctxt.set b.Batch.ctxts.(s) 0 s
  done;
  (* Healthy path: learned results, breaker stays closed. *)
  Alcotest.(check bool) "dispatched" true (Control.fire_batch control ~hook:"h" b);
  for s = 0 to k - 1 do
    Alcotest.(check bool) (Printf.sprintf "slot %d learned" s) true (b.Batch.traps.(s) = None)
  done;
  Alcotest.(check bool) "breaker closed" true (Breaker.state breaker = Breaker.Closed);
  (* Every slot traps: each is served the stock fallback, the trap
     markers stay visible, and the breaker sees one failure per batch. *)
  Fault.with_plan ~seed:1 [ (Fault.Engine_trap, 1.0) ] (fun () ->
      Alcotest.(check bool) "dispatched under faults" true
        (Control.fire_batch control ~hook:"h" b));
  for s = 0 to k - 1 do
    Alcotest.(check int) (Printf.sprintf "slot %d fallback result" s) (s + 100)
      b.Batch.results.(s);
    Alcotest.(check bool)
      (Printf.sprintf "slot %d trap marker kept" s)
      true
      (b.Batch.traps.(s) = Some Interp.Trap_injected)
  done

(* ---------------- Steady-state allocation ---------------- *)

(* Same pattern as test_datapath: Gc.minor_words itself boxes a float, so
   a small measurement-noise allowance; real per-slot allocation would
   cost >= 2 words x 1000 x batch width. *)
let test_zero_alloc_soa_batch () =
  let _control, _vma, vmb = twin_installs () in
  let b = Batch.create ~capacity:8 in
  for s = 0 to 7 do
    fill_slot b.Batch.ctxts.(s) s
  done;
  for _ = 1 to 100 do
    Vm.invoke_batch vmb b ~now:now0
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1_000 do
    Vm.invoke_batch vmb b ~now:now0
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "SoA batch loop allocated %.0f minor words over 1k batches" delta

let test_zero_alloc_fallback_batch () =
  let _control, _vma, vmb = twin_installs ~program:map_program ~model_names:[] () in
  let b = Batch.create ~capacity:8 in
  for s = 0 to 7 do
    Ctxt.set b.Batch.ctxts.(s) 3 (s * 3)
  done;
  for _ = 1 to 100 do
    Vm.invoke_batch vmb b ~now:now0
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1_000 do
    Vm.invoke_batch vmb b ~now:now0
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "fallback batch loop allocated %.0f minor words over 1k batches" delta

(* ---------------- kml batch kernels ---------------- *)

let test_qmlp_predict_batch () =
  let q = make_qmlp () in
  let n = 13 (* exercises both the slot tile and its remainder loop *) in
  let features = Array.init (n * nf) (fun i -> (i * 29) land 63) in
  let out = Array.make n (-1) in
  Kml.Quantize.Qmlp.predict_batch q ~features ~n ~out;
  let f1 = Array.make nf 0 in
  for s = 0 to n - 1 do
    Array.blit features (s * nf) f1 0 nf;
    Alcotest.(check int)
      (Printf.sprintf "slot %d class" s)
      (Kml.Quantize.Qmlp.predict q f1) out.(s)
  done

let test_tree_predict_batch () =
  let rng = Kml.Rng.create 7 in
  let samples =
    List.init 300 (fun _ ->
        let a = Kml.Rng.int rng 100 and b = Kml.Rng.int rng 100 in
        { Kml.Dataset.features = [| a; b |]; label = (if a + b > 100 then 1 else 0) })
  in
  let ds = Kml.Dataset.of_samples ~n_features:2 ~n_classes:2 samples in
  let tree = Kml.Decision_tree.train ds in
  let n = 13 in
  let features = Array.init (n * 2) (fun i -> (i * 41) land 127) in
  let out = Array.make n (-1) in
  Kml.Decision_tree.predict_batch tree ~features ~n ~out;
  let f1 = Array.make 2 0 in
  for s = 0 to n - 1 do
    Array.blit features (s * 2) f1 0 2;
    Alcotest.(check int)
      (Printf.sprintf "slot %d class" s)
      (Kml.Decision_tree.predict tree f1) out.(s)
  done

(* ---------------- Batched table lookup ---------------- *)

let test_table_lookup_batch () =
  let _control, vma, vmb = twin_installs () in
  let make_table vm =
    let table = Table.create ~name:"t" ~match_keys:[| 0 |] ~default:(Table.Const 5) in
    let (_ : Table.entry_id) =
      Table.insert table ~patterns:[| Table.Eq 1 |] (Table.Run vm)
    in
    table
  in
  let ta = make_table vma and tb = make_table vmb in
  let check_case label keys =
    let k = Array.length keys in
    let b = Batch.create ~capacity:k in
    for s = 0 to k - 1 do
      fill_slot b.Batch.ctxts.(s) s;
      Ctxt.set b.Batch.ctxts.(s) 0 keys.(s)
    done;
    Table.lookup_batch tb b ~now:now0;
    for s = 0 to k - 1 do
      let ctxt = Ctxt.create () in
      fill_slot ctxt s;
      Ctxt.set ctxt 0 keys.(s);
      Alcotest.(check int)
        (Printf.sprintf "%s slot %d" label s)
        (Table.lookup ta ~ctxt ~now:now0)
        b.Batch.results.(s)
    done
  in
  (* Uniform batch: every slot lands on the same Run entry, taking the
     single-invoke_batch path; mixed batch dispatches per slot. *)
  check_case "uniform" [| 1; 1; 1; 1 |];
  check_case "mixed" [| 1; 9; 1; 2 |];
  Alcotest.(check int) "hit accounting" (Table.hits ta) (Table.hits tb);
  Alcotest.(check int) "default accounting" (Table.default_hits ta) (Table.default_hits tb)

(* ---------------- Resource reports and budgets ---------------- *)

let test_resource_report () =
  let prog = spec_program ~name:"spec" in
  let helpers = Helper.with_defaults () in
  let report =
    match Verifier.check ~helpers ~model_costs:[||] prog with
    | Ok r -> r
    | Error v -> Alcotest.failf "verify: %s" (Verifier.violation_to_string v)
  in
  let r = Resource.of_report report prog in
  Alcotest.(check string) "program name" "spec" r.Resource.program;
  Alcotest.(check int) "strength-reduced sites" 3 r.Resource.reduced;
  Alcotest.(check int) "fast reps" 1 r.Resource.fast_reps;
  Alcotest.(check int) "specialized sites" 4 (Resource.specialized_sites r);
  Alcotest.(check bool) "steps bounded" true (r.Resource.steps > 0);
  Alcotest.(check bool) "fits the default budget" true
    (Resource.within r Resource.default_budget);
  let tiny = { Resource.default_budget with Resource.max_steps = 1 } in
  Alcotest.(check bool) "violations reported" true (Resource.violations r tiny <> []);
  let json = Resource.to_json r in
  Alcotest.(check bool) "json carries the name" true
    (contains json "\"program\":\"spec\"")

let test_install_resource_budget () =
  let control = Control.create () in
  let prog = spec_program ~name:"spec" in
  (match
     Control.install control
       ~resource_budget:{ Resource.default_budget with Resource.max_steps = 3 }
       prog
   with
  | Error e ->
    Alcotest.(check bool) "budget error names the cause" true
      (contains e "resource budget")
  | Ok _ -> Alcotest.fail "over-budget install must be refused");
  Alcotest.(check bool) "rejected install leaves no report" true
    (Control.resource_report control "spec" = None);
  let (_ : Vm.t) = install_exn control prog in
  (match Control.resource_report control "spec" with
  | Some r ->
    Alcotest.(check int) "report retained post-install" 4 (Resource.specialized_sites r)
  | None -> Alcotest.fail "report must be retained for installed programs");
  let (_ : bool) = Control.remove_program control "spec" in
  Alcotest.(check bool) "report dropped with the program" true
    (Control.resource_report control "spec" = None)

(* ---------------- Batched prefetch entry ---------------- *)

let test_prefetch_on_access_batch () =
  (* Exact slot-for-slot equivalence with the scalar loop needs a frozen
     model: a burst is served from one model snapshot, whereas the scalar
     loop lets a mid-tick retrain or adaptive depth change affect later
     slots (the batch-atomic model view documented on
     [on_access_batch]).  So: adaptivity off, identical scalar warmup on
     both instances until a model has trained, freeze online training,
     then the two entries must agree exactly. *)
  let params = { Rkd.Prefetch_rmt.default_params with Rkd.Prefetch_rmt.adaptive = false } in
  let make () = Rkd.Prefetch_rmt.create ~params ~seed:42 () in
  let scalar = make () and batched = make () in
  let scalar_pf = Rkd.Prefetch_rmt.prefetcher scalar in
  let batched_pf = Rkd.Prefetch_rmt.prefetcher batched in
  let pids = [| 1; 2; 3; 4 |] in
  let pages_at round = Array.map (fun pid -> (pid * 1000) + (round * 2 mod 64)) pids in
  for round = 0 to 149 do
    let pages = pages_at round in
    let hit = round mod 3 = 0 in
    Array.iteri
      (fun i pid ->
        let a = scalar_pf.Ksim.Prefetcher.on_access ~pid ~page:pages.(i) ~hit ~now:round in
        let b = batched_pf.Ksim.Prefetcher.on_access ~pid ~page:pages.(i) ~hit ~now:round in
        Alcotest.(check (list int)) (Printf.sprintf "warmup round %d slot %d" round i) a b)
      pids
  done;
  Alcotest.(check bool) "model trained during warmup" true
    (match Rkd.Prefetch_rmt.tree scalar with Some _ -> true | None -> false);
  Rkd.Prefetch_rmt.set_online scalar false;
  Rkd.Prefetch_rmt.set_online batched false;
  for round = 150 to 249 do
    let pages = pages_at round in
    let hit = round mod 3 = 0 in
    let expected =
      Array.to_list
        (Array.mapi
           (fun i pid -> scalar_pf.Ksim.Prefetcher.on_access ~pid ~page:pages.(i) ~hit ~now:round)
           pids)
    in
    let got =
      Array.to_list (Rkd.Prefetch_rmt.on_access_batch batched ~pids ~pages ~hit ~now:round)
    in
    Alcotest.(check (list (list int)))
      (Printf.sprintf "round %d prefetch targets" round)
      expected got
  done;
  let s1 = Rkd.Prefetch_rmt.stats scalar and s2 = Rkd.Prefetch_rmt.stats batched in
  Alcotest.(check int) "accesses" s1.Rkd.Prefetch_rmt.accesses s2.Rkd.Prefetch_rmt.accesses;
  Alcotest.(check int) "retrains" s1.Rkd.Prefetch_rmt.retrains s2.Rkd.Prefetch_rmt.retrains;
  Alcotest.(check int) "predictions scored" s1.Rkd.Prefetch_rmt.predictions_checked
    s2.Rkd.Prefetch_rmt.predictions_checked;
  Alcotest.(check int) "predictions correct" s1.Rkd.Prefetch_rmt.predictions_correct
    s2.Rkd.Prefetch_rmt.predictions_correct;
  Alcotest.(check int) "model invocations" s1.Rkd.Prefetch_rmt.model_invocations
    s2.Rkd.Prefetch_rmt.model_invocations

let test_prefetch_duplicate_pids_fall_back () =
  let make () = Rkd.Prefetch_rmt.create ~seed:7 () in
  let scalar = make () and batched = make () in
  let scalar_pf = Rkd.Prefetch_rmt.prefetcher scalar in
  let pids = [| 5; 5; 6 |] in
  let pages = [| 5001; 5002; 6001 |] in
  let expected =
    Array.to_list
      (Array.mapi
         (fun i pid ->
           scalar_pf.Ksim.Prefetcher.on_access ~pid ~page:pages.(i) ~hit:false ~now:1)
         pids)
  in
  let got =
    Array.to_list (Rkd.Prefetch_rmt.on_access_batch batched ~pids ~pages ~hit:false ~now:1)
  in
  Alcotest.(check (list (list int))) "duplicate pids served scalar semantics" expected got

(* ---------------- Mixed-action batched lookup ---------------- *)

(* A batch whose slots resolve to different actions (Const default, Run,
   Host) cannot take the uniform SoA path; every slot must still get
   exactly its scalar-lookup result. *)
let test_lookup_batch_mixed_actions () =
  let control, _vma, vmb = twin_installs () in
  let table =
    Control.create_table control ~name:"mixed" ~match_keys:[| 0 |]
      ~default:(Table.Const 7)
  in
  let (_ : Table.entry_id) = Table.insert table ~patterns:[| Table.Eq 1 |] (Table.Run vmb) in
  let (_ : Table.entry_id) =
    Table.insert table ~patterns:[| Table.Eq 2 |]
      (Table.Host (fun ctxt -> Ctxt.get ctxt 11 + 1000))
  in
  let k = 6 in
  let b = Batch.create ~capacity:k in
  for s = 0 to k - 1 do
    fill_slot b.Batch.ctxts.(s) s;
    Ctxt.set b.Batch.ctxts.(s) 0 (s mod 3) (* 0 -> Const, 1 -> Run, 2 -> Host *)
  done;
  Batch.set_n b k;
  Table.lookup_batch table b ~now:now0;
  for s = 0 to k - 1 do
    let ctxt = Ctxt.create () in
    fill_slot ctxt s;
    Ctxt.set ctxt 0 (s mod 3);
    Alcotest.(check int)
      (Printf.sprintf "slot %d mixed batch = scalar" s)
      (Table.lookup table ~ctxt ~now:now0)
      b.Batch.results.(s);
    Alcotest.(check bool) (Printf.sprintf "slot %d clean" s) true (b.Batch.traps.(s) = None)
  done

(* ---------------- Open breaker serves whole batches ---------------- *)

let test_fire_batch_breaker_open_fallback () =
  let control, _vma, vmb = twin_installs () in
  Control.set_clock control now0;
  let table =
    Control.create_table control ~name:"t" ~match_keys:[| 0 |] ~default:(Table.Run vmb)
  in
  Control.attach control ~hook:"h" table;
  let breaker =
    Control.protect control ~hook:"h" ~programs:[ "dut" ]
      ~fallback:(fun ctxt -> Ctxt.get ctxt 0 + 500)
      ()
  in
  let k = 5 in
  let b = Batch.create ~capacity:k in
  for s = 0 to k - 1 do
    fill_slot b.Batch.ctxts.(s) s;
    Ctxt.set b.Batch.ctxts.(s) 0 s;
    (* Stale slot metadata the open-breaker path must clear. *)
    b.Batch.traps.(s) <- Some Interp.Trap_fuel;
    b.Batch.steps.(s) <- 99;
    b.Batch.denied.(s) <- 99
  done;
  Batch.set_n b k;
  Breaker.trip breaker ~now:0;
  let before = Pipeline.fallback_served (Control.pipeline control) ~hook:"h" in
  Alcotest.(check bool) "dispatched" true (Control.fire_batch control ~hook:"h" b);
  for s = 0 to k - 1 do
    Alcotest.(check int) (Printf.sprintf "slot %d stock fallback" s) (s + 500)
      b.Batch.results.(s);
    Alcotest.(check bool) (Printf.sprintf "slot %d trap cleared" s) true
      (b.Batch.traps.(s) = None);
    Alcotest.(check int) (Printf.sprintf "slot %d steps cleared" s) 0 b.Batch.steps.(s);
    Alcotest.(check int) (Printf.sprintf "slot %d denials cleared" s) 0 b.Batch.denied.(s)
  done;
  Alcotest.(check int) "fallback_served counts every slot" (before + k)
    (Pipeline.fallback_served (Control.pipeline control) ~hook:"h");
  Alcotest.(check bool) "breaker still open" true (Breaker.state breaker = Breaker.Open)

let suite =
  [ ( "batch",
    [ Alcotest.test_case "SoA kernel matches scalar invokes" `Quick test_soa_scalar_equivalence;
      Alcotest.test_case "batch-of-1 fallback matches invoke" `Quick
        test_batch_of_one_fallback_equivalence;
      Alcotest.test_case "trap in slot k isolates" `Quick test_trap_isolation_fault_injection;
      Alcotest.test_case "protected hook serves per-slot fallback" `Quick
        test_protected_hook_batch;
      Alcotest.test_case "SoA batch loop is allocation-free" `Quick test_zero_alloc_soa_batch;
      Alcotest.test_case "fallback batch loop is allocation-free" `Quick
        test_zero_alloc_fallback_batch;
      Alcotest.test_case "qmlp predict_batch = predict" `Quick test_qmlp_predict_batch;
      Alcotest.test_case "tree predict_batch = predict" `Quick test_tree_predict_batch;
      Alcotest.test_case "table lookup_batch = lookup" `Quick test_table_lookup_batch;
      Alcotest.test_case "resource report counts" `Quick test_resource_report;
      Alcotest.test_case "install enforces resource budget" `Quick
        test_install_resource_budget;
      Alcotest.test_case "prefetch batch entry = scalar loop" `Quick
        test_prefetch_on_access_batch;
      Alcotest.test_case "prefetch duplicate pids fall back" `Quick
        test_prefetch_duplicate_pids_fall_back;
      Alcotest.test_case "mixed-action lookup_batch = scalar" `Quick
        test_lookup_batch_mixed_actions;
      Alcotest.test_case "open breaker serves whole batches" `Quick
        test_fire_batch_breaker_open_fallback ] ) ]
