(* Hot-datapath tests: the flat Ctxt store and the indexed Table against
   naive oracles, a structured interpreter/JIT differential over the full
   ISA (maps, helpers, ML ops, privacy), steady-state allocation checks,
   and the JIT unit cache keyed by loaded-instance identity. *)

let now0 () = 0

(* ---------------- Ctxt vs. hashtable oracle ---------------- *)

(* Random op sequences over keys 0..300, crossing the dense/sparse boundary
   of the flat store; a plain Hashtbl (absent keys read 0) is the oracle. *)
let prop_ctxt_matches_oracle =
  QCheck2.Test.make ~name:"ctxt = hashtbl oracle across dense/sparse keys" ~count:300
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Kml.Rng.create seed in
      let ri n = Kml.Rng.int rng n in
      let ctxt = Rmt.Ctxt.create () in
      let oracle = Hashtbl.create 64 in
      let ok = ref true in
      for _ = 1 to 400 do
        let key = ri 300 in
        match ri 5 with
        | 0 | 1 ->
          let v = ri 1000 - 500 in
          Rmt.Ctxt.set ctxt key v;
          Hashtbl.replace oracle key v
        | 2 ->
          let expected = match Hashtbl.find_opt oracle key with Some v -> v | None -> 0 in
          if Rmt.Ctxt.get ctxt key <> expected then ok := false
        | 3 ->
          if Rmt.Ctxt.mem ctxt key <> Hashtbl.mem oracle key then ok := false
        | _ ->
          Rmt.Ctxt.remove ctxt key;
          Hashtbl.remove oracle key
      done;
      let bindings t = List.sort compare (Rmt.Ctxt.fold (fun k v acc -> (k, v) :: acc) t []) in
      let oracle_bindings =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle [])
      in
      !ok && bindings ctxt = oracle_bindings)

let test_ctxt_range_across_boundary () =
  let ctxt = Rmt.Ctxt.create () in
  let values = Array.init 20 (fun i -> i * 3 - 10) in
  (* base 120, len 20: keys 120..139 straddle the dense region boundary *)
  Rmt.Ctxt.set_range ctxt ~base:120 values;
  Alcotest.(check (array int)) "range round-trips across dense boundary" values
    (Rmt.Ctxt.get_range ctxt ~base:120 ~len:20);
  Rmt.Ctxt.clear ctxt;
  Alcotest.(check int) "cleared" 0 (Rmt.Ctxt.get ctxt 125);
  Alcotest.(check bool) "cleared mem" false (Rmt.Ctxt.mem ctxt 125)

(* ---------------- Table index vs. linear-scan oracle ---------------- *)

let random_pattern ri =
  match ri 7 with
  | 0 | 1 | 2 -> Rmt.Table.Eq (ri 4)
  | 3 | 4 -> Rmt.Table.Any
  | 5 -> Rmt.Table.Mask { value = ri 8; mask = ri 8 }
  | _ ->
    let lo = ri 4 in
    Rmt.Table.Between (lo, lo + ri 3)

let prop_table_index_matches_linear =
  QCheck2.Test.make ~name:"indexed table lookup = linear-scan oracle" ~count:300
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Kml.Rng.create seed in
      let ri n = Kml.Rng.int rng n in
      let arity = 1 + ri 3 in
      let table =
        Rmt.Table.create ~name:"prop"
          ~match_keys:(Array.init arity (fun i -> i))
          ~default:(Rmt.Table.Const (-1))
      in
      let ids =
        List.init
          (ri 16)
          (fun _ ->
            Rmt.Table.insert table ~priority:(ri 3)
              ~patterns:(Array.init arity (fun _ -> random_pattern ri))
              (Rmt.Table.Const (ri 100)))
      in
      let agree () =
        let ctxt = Rmt.Ctxt.create () in
        for k = 0 to arity - 1 do
          if ri 4 > 0 then Rmt.Ctxt.set ctxt k (ri 6)
        done;
        Rmt.Table.lookup_entry table ~ctxt = Rmt.Table.lookup_entry_linear table ~ctxt
      in
      let ok = ref true in
      for _ = 1 to 20 do
        if not (agree ()) then ok := false
      done;
      (* removal must rebuild the index consistently *)
      List.iteri (fun i id -> if i mod 3 = 0 then ignore (Rmt.Table.remove table id)) ids;
      for _ = 1 to 20 do
        if not (agree ()) then ok := false
      done;
      !ok)

let test_table_priority_and_ties () =
  (* Exact-match entries across different wildcard shapes plus a scan
     entry, all matching the same context: highest priority must win, and
     insertion order must break ties — identical to the linear oracle. *)
  let table =
    Rmt.Table.create ~name:"prio" ~match_keys:[| 0; 1 |] ~default:(Rmt.Table.Const (-1))
  in
  let e_any = Rmt.Table.insert table ~priority:1 ~patterns:[| Rmt.Table.Any; Rmt.Table.Any |]
      (Rmt.Table.Const 10) in
  let e_eq = Rmt.Table.insert table ~priority:2
      ~patterns:[| Rmt.Table.Eq 5; Rmt.Table.Any |] (Rmt.Table.Const 20) in
  let e_eq2 = Rmt.Table.insert table ~priority:2
      ~patterns:[| Rmt.Table.Eq 5; Rmt.Table.Eq 7 |] (Rmt.Table.Const 30) in
  let e_mask = Rmt.Table.insert table ~priority:3
      ~patterns:[| Rmt.Table.Mask { value = 1; mask = 1 }; Rmt.Table.Any |]
      (Rmt.Table.Const 40) in
  let ctxt = Rmt.Ctxt.of_list [ (0, 5); (1, 7) ] in
  Alcotest.(check int) "mask entry wins on priority" 40
    (Rmt.Table.lookup table ~ctxt ~now:now0);
  Alcotest.(check bool) "agrees with oracle" true
    (Rmt.Table.lookup_entry table ~ctxt = Rmt.Table.lookup_entry_linear table ~ctxt);
  ignore (Rmt.Table.remove table e_mask);
  Alcotest.(check int) "earlier insertion breaks the tie" 20
    (Rmt.Table.lookup table ~ctxt ~now:now0);
  ignore (Rmt.Table.remove table e_eq);
  Alcotest.(check int) "other wildcard shape found" 30
    (Rmt.Table.lookup table ~ctxt ~now:now0);
  ignore (Rmt.Table.remove table e_eq2);
  Alcotest.(check int) "falls back to any/any" 10 (Rmt.Table.lookup table ~ctxt ~now:now0);
  ignore (Rmt.Table.remove table e_any);
  Alcotest.(check int) "default" (-1) (Rmt.Table.lookup table ~ctxt ~now:now0)

(* ---------------- Structured interpreter/JIT differential ----------- *)

(* Verified-by-construction program generator covering much more of the ISA
   than the fuzz generator in Test_rmt_vm: maps (hash/array/ring), helper
   calls (with the r1-r5 clobber contract respected by reinitializing after
   every call), nested Rep loops, skip-over branches, the vector/ML ISA,
   and optionally a privacy budget with DP-charged aggregate helpers.  No
   QCheck assume: every generated program must install, so the property
   genuinely runs on every trial. *)
let gen_program rng =
  let open Rmt.Insn in
  let ri n = Kml.Rng.int rng n in
  let with_maps = ri 2 = 0 in
  let with_ml = ri 3 = 0 in
  let with_privacy = ri 3 = 0 in
  let dreg () = 1 + ri 7 in
  let sreg () = ri 8 in
  let alu_ops = [| Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr; Min; Max |] in
  let conds = [| Eq; Ne; Lt; Le; Gt; Ge |] in
  (* Call and Call_ml clobber r1-r5: restore the all-initialized invariant
     immediately so any later read passes the verifier's dataflow check. *)
  let reinit () = List.init 5 (fun i -> Ld_imm (i + 1, ri 40 - 20)) in
  let simple_block () =
    match ri (if with_maps then 12 else 8) with
    | 0 -> [ Ld_imm (dreg (), ri 200 - 100) ]
    | 1 -> [ Mov (dreg (), sreg ()) ]
    | 2 -> [ Alu (alu_ops.(ri 12), dreg (), sreg ()) ]
    | 3 -> [ Alu_imm (alu_ops.(ri 12), dreg (), ri 64 - 32) ]
    | 4 -> [ Ld_ctxt_k (dreg (), ri 12) ]
    | 5 -> [ St_ctxt (ri 12, sreg ()) ]
    | 6 -> [ Ld_ctxt (dreg (), sreg ()) ]
    | 7 ->
      let rk = dreg () in
      [ Alu_imm (And, rk, 63); St_ctxt_r (rk, sreg ()) ]
    | 8 ->
      let rk = dreg () in
      [ Alu_imm (And, rk, 15); Map_update (0, rk, sreg ()) ]
    | 9 -> [ Map_lookup (dreg (), ri 2, sreg ()) ]
    | 10 -> [ Ring_push (2, sreg ()) ]
    | _ ->
      let rk = dreg () in
      [ Alu_imm (And, rk, 15); Map_update (1, rk, sreg ()) ]
  in
  (* Guard-path probes: unmasked dynamic ctxt keys (exercises the negative-
     key guard) and Vec_ld_map windows both unproven (short reads past the
     array end read 0) and masked-in-bounds (the verifier proves the window
     and both engines take the elided blit path). *)
  let guard_block () =
    if not with_maps then [ St_ctxt_r (sreg (), sreg ()) ]
    else
      match ri 3 with
      | 0 -> [ St_ctxt_r (sreg (), sreg ()) ]
      | 1 -> [ Vec_ld_map (0, 1, sreg (), 4) ]
      | _ ->
        let rk = dreg () in
        [ Alu_imm (And, rk, 7); Vec_ld_map (0, 1, rk, 4) ]
  in
  let call_block () =
    match ri (if with_privacy then 5 else 4) with
    | 0 -> Call Rmt.Helper.abs_val :: reinit ()
    | 1 -> Call Rmt.Helper.sign :: reinit ()
    | 2 -> Call Rmt.Helper.log2_floor :: reinit ()
    | 3 ->
      Ld_imm (2, ri 20 - 10) :: Ld_imm (3, ri 20) :: Call Rmt.Helper.clamp3 :: reinit ()
    | _ ->
      (* DP-charged aggregate; repeated calls exhaust the budget so
         privacy_denied is exercised on both engines *)
      Ld_imm (1, ri 8) :: Ld_imm (2, 1 + ri 4) :: Call Rmt.Helper.ctxt_sum_range :: reinit ()
  in
  let ml_block () =
    match ri 3 with
    | 0 -> Vec_ld_ctxt (0, ri 8, 3) :: Call_ml (0, 0, 3) :: reinit ()
    | 1 ->
      [ Vec_ld_ctxt (0, ri 8, 3);
        Vec_i2f (0, 3);
        Mat_mul (3, 0, 0);
        Vec_add_const (3, 1);
        Vec_relu (3, 2);
        Vec_argmax (6, 3, 2) ]
    | _ ->
      let rd = dreg () in
      [ Vec_st_reg (5, sreg ()); Vec_ld_reg (rd, 5) ]
  in
  let rec body_block depth =
    let pick = ri 100 in
    if pick < 55 then simple_block ()
    else if pick < 70 then call_block ()
    else if pick < 82 && with_ml then ml_block ()
    else if pick < 92 && depth < 2 then rep_block (depth + 1)
    else simple_block ()
  and rep_block depth =
    let body = List.concat (List.init (1 + ri 2) (fun _ -> body_block depth)) in
    Rep (1 + ri 4, List.length body) :: body
  in
  let branch_block () =
    let body = List.concat (List.init (1 + ri 2) (fun _ -> simple_block ())) in
    Jcond_imm (conds.(ri 6), sreg (), ri 20 - 10, List.length body) :: body
  in
  let top_block () =
    match ri 11 with
    | 0 | 1 | 2 | 3 -> simple_block ()
    | 4 | 5 -> branch_block ()
    | 6 | 7 -> rep_block 1
    | 8 -> call_block ()
    | 9 -> guard_block ()
    | _ -> if with_ml then ml_block () else simple_block ()
  in
  let blocks = List.concat (List.init (3 + ri 6) (fun _ -> top_block ())) in
  let prelude = List.init 8 (fun r -> Ld_imm (r, (r * 7) - 11)) in
  let code = prelude @ blocks @ [ Mov (0, dreg ()); Exit ] in
  let w =
    Rmt.Program.const_matrix ~name:"w" ~rows:2 ~cols:3
      (Array.map Kml.Fixed.of_float [| 1.0; -2.0; 0.5; -1.0; 1.5; 2.0 |])
  in
  let b = Rmt.Program.const_vector ~name:"b" (Array.map Kml.Fixed.of_float [| 0.25; -1.0 |]) in
  let program =
    Rmt.Program.make ~name:"structured" ~vmem_size:8
      ~consts:(if with_ml then [ w; b ] else [])
      ~map_specs:
        (if with_maps then
           [ { Rmt.Map_store.kind = Rmt.Map_store.Hash_map; capacity = 32 };
             { Rmt.Map_store.kind = Rmt.Map_store.Array_map; capacity = 16 };
             { Rmt.Map_store.kind = Rmt.Map_store.Ring_buffer; capacity = 8 } ]
         else [])
      ~model_arity:(if with_ml then [ 3 ] else [])
      ~capabilities:
        (* The verifier's information-flow check requires a budget whenever
           context-derived values can reach a map/ring sink, which the
           simple_block map cases freely do. *)
        (if with_privacy || with_maps then
           [ Rmt.Program.Privacy_budget { epsilon_milli = 150 + ri 200 } ]
         else [])
      code
  in
  let fn_model =
    Rmt.Model_store.Fn
      { n_features = 3;
        cost = Kml.Model_cost.zero;
        f = (fun fs -> (fs.(0) + (2 * fs.(1)) - fs.(2)) land 7) }
  in
  let models = if with_ml then [ ("m", fn_model) ] else [] in
  (program, models, List.map fst models)

let structured_trials = 1000

let prop_structured_differential =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "interp = jit on %d structured programs (maps/helpers/ml/privacy)"
         structured_trials)
    ~count:structured_trials
    QCheck2.Gen.(int_range 0 1_000_000_000)
    (fun seed ->
      let rng = Kml.Rng.create seed in
      let program, models, model_names = gen_program rng in
      let ctxt_bindings = List.init 12 (fun k -> (k, Kml.Rng.int rng 100 - 20)) in
      let observe engine =
        let control = Rmt.Control.create ~engine () in
        List.iter
          (fun (name, model) ->
            let (_ : Rmt.Model_store.handle) =
              Rmt.Control.register_model control ~name model
            in
            ())
          models;
        match Rmt.Control.install control ~model_names program with
        | Error e ->
          (* the generator is verified-by-construction; a rejection is a
             test bug, not a discard *)
          Alcotest.failf "generated program failed to install: %s" e
        | Ok vm ->
          let ctxt = Rmt.Ctxt.of_list ctxt_bindings in
          (* run twice: the second run exercises scratch-buffer reuse *)
          let o1 = Rmt.Vm.invoke vm ~ctxt ~now:now0 in
          let o2 = Rmt.Vm.invoke vm ~ctxt ~now:now0 in
          ( (o1.Rmt.Interp.result, o1.Rmt.Interp.steps, o1.Rmt.Interp.privacy_denied),
            (o2.Rmt.Interp.result, o2.Rmt.Interp.steps, o2.Rmt.Interp.privacy_denied),
            List.sort compare (Rmt.Ctxt.fold (fun k v acc -> (k, v) :: acc) ctxt []) )
      in
      observe Rmt.Vm.Interpreted = observe Rmt.Vm.Jit_compiled)

(* ---------------- Steady-state allocation ---------------- *)

(* Gc.minor_words itself returns a boxed float, so the measured delta over
   10_000 invocations carries a few words of measurement noise; any real
   per-invocation allocation would cost >= 2 words x 10_000. *)
let test_invoke_result_zero_alloc () =
  let open Rmt.Insn in
  let program =
    Rmt.Program.make ~name:"hot"
      ~map_specs:[ { Rmt.Map_store.kind = Rmt.Map_store.Hash_map; capacity = 64 } ]
      [ Ld_ctxt_k (1, 3);
        Alu_imm (And, 1, 31);
        Ld_imm (2, 7);
        Map_update (0, 1, 2);
        Map_lookup (4, 0, 1);
        Mov (1, 4);
        Call Rmt.Helper.abs_val;
        St_ctxt (5, 0);
        Rep (8, 1);
        Alu_imm (Add, 0, 1);
        Exit ]
  in
  let control = Rmt.Control.create ~engine:Rmt.Vm.Jit_compiled () in
  let vm =
    match Rmt.Control.install control program with
    | Ok vm -> vm
    | Error e -> Alcotest.failf "install: %s" e
  in
  let ctxt = Rmt.Ctxt.of_list [ (3, 12) ] in
  for _ = 1 to 100 do
    ignore (Rmt.Vm.invoke_result vm ~ctxt ~now:now0)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Rmt.Vm.invoke_result vm ~ctxt ~now:now0)
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "JIT invoke allocated %.0f minor words over 10k steady-state runs" delta

let test_table_lookup_zero_alloc () =
  let table =
    Rmt.Table.create ~name:"hot" ~match_keys:[| 0; 1 |] ~default:(Rmt.Table.Const 0)
  in
  for a = 0 to 15 do
    ignore
      (Rmt.Table.insert table ~patterns:[| Rmt.Table.Eq a; Rmt.Table.Any |]
         (Rmt.Table.Const a))
  done;
  ignore
    (Rmt.Table.insert table ~patterns:[| Rmt.Table.Between (100, 200); Rmt.Table.Any |]
       (Rmt.Table.Const 99));
  let ctxt = Rmt.Ctxt.of_list [ (0, 7); (1, 3) ] in
  for _ = 1 to 100 do
    ignore (Rmt.Table.lookup table ~ctxt ~now:now0)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Rmt.Table.lookup table ~ctxt ~now:now0)
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "table lookup allocated %.0f minor words over 10k runs" delta

(* Decision-tree inference walks a structure-of-arrays mirror of the tree
   (lib/kml/decision_tree.ml), so steady-state predict must not allocate
   either — it sits on the same hot path as the JIT datapath above. *)
let test_tree_predict_zero_alloc () =
  let rng = Kml.Rng.create 7 in
  let samples =
    List.init 400 (fun _ ->
        let a = Kml.Rng.int rng 100 and b = Kml.Rng.int rng 100 and c = Kml.Rng.int rng 100 in
        let label = if a + b > 100 then 1 else if c > 60 then 2 else 0 in
        { Kml.Dataset.features = [| a; b; c |]; label })
  in
  let ds = Kml.Dataset.of_samples ~n_features:3 ~n_classes:3 samples in
  let tree = Kml.Decision_tree.train ds in
  if Kml.Decision_tree.depth tree < 2 then Alcotest.fail "expected a non-trivial tree";
  let features = [| 55; 60; 30 |] in
  for _ = 1 to 100 do
    ignore (Kml.Decision_tree.predict tree features)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Kml.Decision_tree.predict tree features)
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "tree predict allocated %.0f minor words over 10k runs" delta

(* ---------------- JIT unit cache identity ---------------- *)

(* Reinstalling a program under the same name must not let the JIT serve
   the stale unit: the cache is keyed by the loaded instance's uid. *)
let test_jit_unit_cache_by_uid () =
  let open Rmt.Insn in
  let control = Rmt.Control.create ~engine:Rmt.Vm.Jit_compiled () in
  let caller = Rmt.Program.make ~name:"caller" ~n_prog_slots:1 [ Tail_call 0 ] in
  let callee v = Rmt.Program.make ~name:"callee" [ Ld_imm (0, v); Exit ] in
  let (_ : Rmt.Vm.t) = Result.get_ok (Rmt.Control.install control (callee 7)) in
  let caller_vm = Result.get_ok (Rmt.Control.install control caller) in
  let bind () =
    match Rmt.Control.bind_tail_call control ~caller:"caller" ~slot:0 ~callee:"callee" with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  in
  bind ();
  let invoke () = Rmt.Vm.invoke_result caller_vm ~ctxt:(Rmt.Ctxt.create ()) ~now:now0 in
  Alcotest.(check int) "first callee" 7 (invoke ());
  Alcotest.(check int) "caller + callee units" 2 (Rmt.Vm.jit_units caller_vm);
  (* replace the same-named program and rebind *)
  let (_ : Rmt.Vm.t) = Result.get_ok (Rmt.Control.install control (callee 9)) in
  bind ();
  Alcotest.(check int) "rebound callee, not the stale unit" 9 (invoke ());
  Alcotest.(check int) "distinct unit per loaded instance" 3 (Rmt.Vm.jit_units caller_vm)

let suite =
  [ ( "datapath",
      [ QCheck_alcotest.to_alcotest prop_ctxt_matches_oracle;
        Alcotest.test_case "ctxt range across dense boundary" `Quick
          test_ctxt_range_across_boundary;
        QCheck_alcotest.to_alcotest prop_table_index_matches_linear;
        Alcotest.test_case "table priority and ties" `Quick test_table_priority_and_ties;
        QCheck_alcotest.to_alcotest prop_structured_differential;
        Alcotest.test_case "jit invoke is allocation-free" `Quick
          test_invoke_result_zero_alloc;
        Alcotest.test_case "table lookup is allocation-free" `Quick
          test_table_lookup_zero_alloc;
        Alcotest.test_case "tree predict is allocation-free" `Quick
          test_tree_predict_zero_alloc;
        Alcotest.test_case "jit unit cache keyed by uid" `Quick test_jit_unit_cache_by_uid ] ) ]
