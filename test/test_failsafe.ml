(* Tests for the failsafe layer (DESIGN.md section 12): fault injection,
   circuit breaker, trap containment at the Vm boundary, transactional
   canary installs, checked model updates, decode fuzzing, and the chaos
   soak's pool-width determinism. *)

let now0 () = 0

(* ---------------- Fault plans ---------------- *)

let test_fault_parse_spec () =
  (match Rmt.Fault.parse_spec "engine_trap:0.5" with
   | Ok [ (Rmt.Fault.Engine_trap, p) ] -> Alcotest.(check (float 1e-9)) "prob" 0.5 p
   | Ok _ -> Alcotest.fail "wrong plan shape"
   | Error e -> Alcotest.fail e);
  (match Rmt.Fault.parse_spec "all:0.01" with
   | Ok plan ->
     Alcotest.(check int) "all points" (List.length Rmt.Fault.all_points) (List.length plan)
   | Error e -> Alcotest.fail e);
  (match Rmt.Fault.parse_spec "bogus:0.1" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown point must be rejected");
  (match Rmt.Fault.parse_spec "engine_trap" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing probability must be rejected");
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        (Rmt.Fault.point_name p) (Some (Rmt.Fault.point_name p))
        (Option.map Rmt.Fault.point_name
           (Rmt.Fault.point_of_name (Rmt.Fault.point_name p))))
    Rmt.Fault.all_points

let test_fault_plan_determinism () =
  let draw () =
    Rmt.Fault.with_plan ~seed:0xfeed
      [ (Rmt.Fault.Engine_trap, 0.5) ]
      (fun () -> List.init 200 (fun _ -> Rmt.Fault.fire Rmt.Fault.Engine_trap))
  in
  let a = draw () and b = draw () in
  Alcotest.(check (list bool)) "same seed, same schedule" a b;
  Alcotest.(check bool) "nontrivial schedule" true
    (List.mem true a && List.mem false a)

let test_fault_scoping () =
  Alcotest.(check bool) "inert outside a plan" false
    (Rmt.Fault.fire Rmt.Fault.Engine_trap);
  Rmt.Fault.with_plan ~seed:1
    [ (Rmt.Fault.Engine_trap, 1.0) ]
    (fun () ->
      Alcotest.(check bool) "armed" true (Rmt.Fault.active ());
      Alcotest.(check bool) "fires at p=1" true (Rmt.Fault.fire Rmt.Fault.Engine_trap);
      Rmt.Fault.without (fun () ->
          Alcotest.(check bool) "suppressed scope" false
            (Rmt.Fault.fire Rmt.Fault.Engine_trap));
      Alcotest.(check bool) "re-armed after without" true
        (Rmt.Fault.fire Rmt.Fault.Engine_trap));
  Alcotest.(check bool) "disarmed after with_plan" false
    (Rmt.Fault.fire Rmt.Fault.Engine_trap)

(* ---------------- Circuit breaker ---------------- *)

let test_breaker_state_machine () =
  let b = Rmt.Breaker.create ~seed:42 "test" in
  let cfg = Rmt.Breaker.config b in
  Alcotest.(check bool) "closed admits" true (Rmt.Breaker.allow b ~now:0);
  for _ = 1 to cfg.Rmt.Breaker.failure_threshold - 1 do
    Rmt.Breaker.record_failure b ~now:0
  done;
  Alcotest.(check bool) "still closed below threshold" true
    (Rmt.Breaker.state b = Rmt.Breaker.Closed);
  Rmt.Breaker.record_failure b ~now:0;
  Alcotest.(check bool) "open at threshold" true (Rmt.Breaker.state b = Rmt.Breaker.Open);
  Alcotest.(check bool) "open refuses" false (Rmt.Breaker.allow b ~now:0);
  let deadline = Rmt.Breaker.retry_at b in
  Alcotest.(check bool) "deadline in the future" true (deadline > 0);
  Alcotest.(check bool) "refuses before deadline" false
    (Rmt.Breaker.allow b ~now:(deadline - 1));
  Alcotest.(check bool) "admits a probe after deadline" true
    (Rmt.Breaker.allow b ~now:(deadline + 1));
  Alcotest.(check bool) "half-open" true (Rmt.Breaker.state b = Rmt.Breaker.Half_open);
  for _ = 1 to cfg.Rmt.Breaker.success_threshold do
    Rmt.Breaker.record_success b ~now:(deadline + 1)
  done;
  Alcotest.(check bool) "closed after probes" true
    (Rmt.Breaker.state b = Rmt.Breaker.Closed);
  Alcotest.(check int) "one open" 1 (Rmt.Breaker.opens b);
  Alcotest.(check int) "one close" 1 (Rmt.Breaker.closes b)

let test_breaker_backoff_growth () =
  let b = Rmt.Breaker.create ~seed:7 "growth" in
  Rmt.Breaker.trip b ~now:0;
  let first_interval = Rmt.Breaker.retry_at b in
  let probe_at = first_interval + 1 in
  Alcotest.(check bool) "probe admitted" true (Rmt.Breaker.allow b ~now:probe_at);
  Rmt.Breaker.record_failure b ~now:probe_at;
  Alcotest.(check bool) "re-opened" true (Rmt.Breaker.state b = Rmt.Breaker.Open);
  let second_interval = Rmt.Breaker.retry_at b - probe_at in
  Alcotest.(check bool) "backoff grew" true (second_interval > first_interval);
  Rmt.Breaker.reset b;
  Alcotest.(check bool) "reset closes" true (Rmt.Breaker.state b = Rmt.Breaker.Closed);
  Alcotest.(check int) "counters preserved" 2 (Rmt.Breaker.opens b)

let test_breaker_jitter_determinism () =
  let run seed =
    let b = Rmt.Breaker.create ~seed "det" in
    Rmt.Breaker.trip b ~now:0;
    let d1 = Rmt.Breaker.retry_at b in
    ignore (Rmt.Breaker.allow b ~now:(d1 + 1));
    Rmt.Breaker.record_failure b ~now:(d1 + 1);
    (d1, Rmt.Breaker.retry_at b)
  in
  Alcotest.(check (pair int int)) "same seed, same deadlines" (run 5) (run 5)

(* ---------------- Guardrail window ---------------- *)

let test_guardrail_window_and_reset () =
  let g = Rmt.Guardrail.create_windowed ~window:16 ~lo:0 ~hi:10 in
  Alcotest.(check int) "in range passes" 5 (Rmt.Guardrail.apply g 5);
  Alcotest.(check (float 1e-9)) "no violations yet" 0.0 (Rmt.Guardrail.violation_rate g);
  for _ = 1 to 12 do
    Alcotest.(check int) "clamped" 10 (Rmt.Guardrail.apply g 20)
  done;
  Alcotest.(check int) "violations counted" 12 (Rmt.Guardrail.violations g);
  Alcotest.(check bool) "storm visible in window" true
    (Rmt.Guardrail.violation_rate g > 0.8);
  Rmt.Guardrail.reset g;
  Alcotest.(check int) "reset zeroes lifetime" 0 (Rmt.Guardrail.violations g);
  Alcotest.(check (float 1e-9)) "reset zeroes window" 0.0 (Rmt.Guardrail.violation_rate g)

(* ---------------- Trap containment at the Vm boundary ---------------- *)

let guarded_prog ?(name = "p") ?(bias = 1) ?(lo = 0) ?(hi = 4095) () =
  let b = Rmt.Builder.create ~name ~vmem_size:1 () in
  Rmt.Builder.add_capability b (Rmt.Program.Guarded { lo; hi });
  Rmt.Builder.emit b (Rmt.Insn.Ld_ctxt_k (0, 0));
  Rmt.Builder.emit b (Rmt.Insn.Alu_imm (Rmt.Insn.Add, 0, bias));
  Rmt.Builder.emit b Rmt.Insn.Exit;
  Rmt.Builder.finish b ()

let test_trap_surfaces_as_value () =
  List.iter
    (fun engine ->
      let control = Rmt.Control.create ~engine () in
      let vm = Result.get_ok (Rmt.Control.install control (guarded_prog ())) in
      let ctxt = Rmt.Ctxt.of_list [ (0, 10) ] in
      Alcotest.(check int) "healthy result" 11
        (Result.get_ok (Rmt.Vm.invoke_result_checked vm ~ctxt ~now:now0));
      Rmt.Fault.with_plan ~seed:3
        [ (Rmt.Fault.Engine_trap, 1.0) ]
        (fun () ->
          match Rmt.Vm.invoke_checked vm ~ctxt ~now:now0 with
          | Error Rmt.Interp.Trap_injected -> ()
          | Error t -> Alcotest.failf "wrong trap: %s" (Rmt.Interp.trap_message t)
          | Ok _ -> Alcotest.fail "injected trap must surface");
      Alcotest.(check int) "trap counted" 1 (Rmt.Vm.traps vm);
      Alcotest.(check int) "healthy again after the plan" 11
        (Result.get_ok (Rmt.Vm.invoke_result_checked vm ~ctxt ~now:now0)))
    [ Rmt.Vm.Interpreted; Rmt.Vm.Jit_compiled ]

let test_trap_messages () =
  List.iter
    (fun t -> Alcotest.(check bool) "non-empty" true
        (String.length (Rmt.Interp.trap_message t) > 0))
    [ Rmt.Interp.Trap_fuel;
      Rmt.Interp.Trap_bounds "x";
      Rmt.Interp.Trap_div;
      Rmt.Interp.Trap_injected;
      Rmt.Interp.Trap_foreign "y" ]

let test_div_mod_extremes () =
  let open Rmt.Insn in
  Alcotest.(check int) "min_int / -1" min_int (eval_alu Div min_int (-1));
  Alcotest.(check int) "min_int mod -1" 0 (eval_alu Mod min_int (-1));
  (* The two engines agree on the hardware-trap corner. *)
  let prog =
    let b = Rmt.Builder.create ~name:"divx" ~vmem_size:1 () in
    Rmt.Builder.add_capability b (Rmt.Program.Guarded { lo = min_int; hi = max_int });
    Rmt.Builder.emit b (Rmt.Insn.Ld_ctxt_k (0, 0));
    Rmt.Builder.emit b (Rmt.Insn.Ld_ctxt_k (1, 1));
    Rmt.Builder.emit b (Rmt.Insn.Alu (Div, 0, 1));
    Rmt.Builder.emit b Rmt.Insn.Exit;
    Rmt.Builder.finish b ()
  in
  let ctxt = Rmt.Ctxt.of_list [ (0, min_int); (1, -1) ] in
  let run engine =
    let control = Rmt.Control.create ~engine () in
    let vm = Result.get_ok (Rmt.Control.install control prog) in
    Rmt.Vm.invoke_result vm ~ctxt ~now:now0
  in
  Alcotest.(check int) "interp" min_int (run Rmt.Vm.Interpreted);
  Alcotest.(check int) "jit" min_int (run Rmt.Vm.Jit_compiled)

(* ---------------- Canary install ---------------- *)

let canary_setup () =
  let control = Rmt.Control.create () in
  let vm = Result.get_ok (Rmt.Control.install control (guarded_prog ~bias:1 ())) in
  let ctxt = Rmt.Ctxt.of_list [ (0, 10) ] in
  let run () = Rmt.Vm.invoke_result vm ~ctxt ~now:now0 in
  (control, vm, run)

let test_canary_promote () =
  let control, vm, run = canary_setup () in
  Alcotest.(check int) "incumbent" 11 (run ());
  (match
     Rmt.Control.install_canary control ~invocations:4 ~max_divergences:0 ~grace:4
       (guarded_prog ~bias:1 ())
   with
   | Ok staged -> Alcotest.(check bool) "staged on the incumbent Vm" true (staged == vm)
   | Error e -> Alcotest.fail e);
  (match Rmt.Control.canary_status control "p" with
   | Some (`Canary (4, 0)) -> ()
   | _ -> Alcotest.fail "expected a 4-invocation canary");
  for _ = 1 to 4 do
    Alcotest.(check int) "incumbent serves during shadowing" 11 (run ())
  done;
  (match Rmt.Control.canary_status control "p" with
   | Some (`Grace _) -> ()
   | _ -> Alcotest.fail "identical candidate must be promoted");
  Alcotest.(check int) "candidate serves after promotion" 11 (run ());
  for _ = 1 to 8 do
    ignore (run ())
  done;
  (match Rmt.Control.canary_status control "p" with
   | Some `Idle -> ()
   | _ -> Alcotest.fail "grace window must expire");
  Alcotest.(check bool) "nothing left to roll back" false
    (Rmt.Control.rollback_program control "p")

let test_canary_divergent_rolled_back () =
  let control, _vm, run = canary_setup () in
  (match
     Rmt.Control.install_canary control ~invocations:4 ~max_divergences:0 ~grace:4
       (guarded_prog ~bias:100 ())
   with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  for _ = 1 to 6 do
    Alcotest.(check int) "incumbent result throughout" 11 (run ())
  done;
  (match Rmt.Control.canary_status control "p" with
   | Some `Idle -> ()
   | _ -> Alcotest.fail "divergent candidate must be dropped");
  Alcotest.(check int) "incumbent still serves" 11 (run ())

let test_canary_rollback_during_grace () =
  let control, _vm, run = canary_setup () in
  (match
     Rmt.Control.install_canary control ~invocations:2 ~max_divergences:2 ~grace:16
       (guarded_prog ~bias:2 ())
   with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  ignore (run ());
  ignore (run ());
  Alcotest.(check int) "promoted candidate serves" 12 (run ());
  Alcotest.(check bool) "rollback during grace" true
    (Rmt.Control.rollback_program control "p");
  Alcotest.(check int) "incumbent restored" 11 (run ())

let test_canary_cancel () =
  let control, _vm, run = canary_setup () in
  (match
     Rmt.Control.install_canary control ~invocations:64 (guarded_prog ~bias:9 ())
   with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "cancel in-flight" true (Rmt.Control.rollback_program control "p");
  (match Rmt.Control.canary_status control "p" with
   | Some `Idle -> ()
   | _ -> Alcotest.fail "cancelled canary must be idle");
  Alcotest.(check int) "incumbent untouched" 11 (run ())

(* ---------------- Checked model updates ---------------- *)

let constant_model v =
  Rmt.Model_store.Fn { n_features = 1; cost = Kml.Model_cost.zero; f = (fun _ -> v) }

let test_update_model_checked () =
  let control = Rmt.Control.create () in
  let now = ref 0 in
  Rmt.Control.set_clock control (fun () -> !now);
  let (_ : Rmt.Model_store.handle) =
    Rmt.Control.register_model control ~name:"m" (constant_model 1)
  in
  let program =
    Rmt.Program.make ~name:"mp" ~vmem_size:2 ~model_arity:[ 1 ]
      [ Rmt.Insn.Vec_ld_ctxt (0, 0, 1); Rmt.Insn.Call_ml (0, 0, 1); Rmt.Insn.Exit ]
  in
  let vm = Result.get_ok (Rmt.Control.install control ~model_names:[ "m" ] program) in
  let run () = Rmt.Vm.invoke_result vm ~ctxt:(Rmt.Ctxt.create ()) ~now:now0 in
  Alcotest.(check int) "initial" 1 (run ());
  let samples = [ [| 5 |] ] in
  (* Out-of-range probe: swap must be rolled back. *)
  (match
     Rmt.Control.update_model_checked control ~name:"m" ~samples ~lo:0 ~hi:10
       (constant_model 50)
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "out-of-range model must be rejected");
  Alcotest.(check int) "incumbent model restored" 1 (run ());
  (* Raising probe: also rolled back. *)
  now := 10_000_000;
  (match
     Rmt.Control.update_model_checked control ~name:"m" ~samples ~lo:0 ~hi:10
       (Rmt.Model_store.Fn
          { n_features = 1; cost = Kml.Model_cost.zero; f = (fun _ -> failwith "boom") })
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "raising model must be rejected");
  Alcotest.(check int) "still the incumbent" 1 (run ());
  (* Backoff: a good update right after a failure is deferred. *)
  (match
     Rmt.Control.update_model_checked control ~name:"m" ~samples ~lo:0 ~hi:10
       (constant_model 2)
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "update inside the backoff window must be deferred");
  (* After the backoff expires the good update lands. *)
  now := !now + 2_000_000_000;
  (match
     Rmt.Control.update_model_checked control ~name:"m" ~samples ~lo:0 ~hi:10
       (constant_model 2)
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check int) "good update applied" 2 (run ())

(* ---------------- Protected pipeline dispatch ---------------- *)

let test_pipeline_fallback_on_open () =
  let control = Rmt.Control.create () in
  let now = ref 0 in
  Rmt.Control.set_clock control (fun () -> !now);
  let vm = Result.get_ok (Rmt.Control.install control (guarded_prog ~bias:1 ())) in
  let table =
    Rmt.Control.create_table control ~name:"t" ~match_keys:[||]
      ~default:(Rmt.Table.Run vm)
  in
  Rmt.Control.attach control ~hook:"h" table;
  let breaker =
    Rmt.Control.protect control ~hook:"h" ~programs:[ "p" ] ~fallback:(fun _ -> 999) ()
  in
  let ctxt = Rmt.Ctxt.of_list [ (0, 10) ] in
  let fire () = Rmt.Control.fire control ~hook:"h" ~ctxt in
  Alcotest.(check (option int)) "healthy learned path" (Some 11) (fire ());
  Rmt.Fault.with_plan ~seed:9
    [ (Rmt.Fault.Engine_trap, 1.0) ]
    (fun () ->
      for _ = 1 to 4 do
        Alcotest.(check (option int)) "trap serves the heuristic" (Some 999) (fire ())
      done);
  Alcotest.(check bool) "breaker opened under the fault storm" true
    (Rmt.Breaker.state breaker = Rmt.Breaker.Open);
  Alcotest.(check (option int)) "open breaker serves the heuristic faults-off"
    (Some 999) (fire ());
  let served =
    Rmt.Pipeline.fallback_served (Rmt.Control.pipeline control) ~hook:"h"
  in
  Alcotest.(check bool) "fallback count advanced" true (served >= 5);
  (* Fault-free probes after the backoff deadline re-close the breaker. *)
  now := Rmt.Breaker.retry_at breaker + 1;
  let cfg = Rmt.Breaker.config breaker in
  for _ = 1 to cfg.Rmt.Breaker.success_threshold do
    Alcotest.(check (option int)) "probe serves the learned path" (Some 11) (fire ())
  done;
  Alcotest.(check bool) "re-closed" true (Rmt.Breaker.state breaker = Rmt.Breaker.Closed);
  Alcotest.(check (option int)) "learned path restored" (Some 11) (fire ())

(* ---------------- Decode fuzz ---------------- *)

let test_decode_fuzz () =
  let s = Rmt.Fuzz.decode_fuzz ~seed:0xdec0de ~trials:150 () in
  Alcotest.(check bool) "enough mutations" true (s.Rmt.Fuzz.mutations >= 1000);
  Alcotest.(check int) "every mutation decoded or rejected" s.Rmt.Fuzz.mutations
    (s.Rmt.Fuzz.decoded_ok + s.Rmt.Fuzz.decoded_error);
  Alcotest.(check int) "pristine images roundtrip" s.Rmt.Fuzz.d_trials
    s.Rmt.Fuzz.roundtrips

(* ---------------- Chaos soak determinism ---------------- *)

let test_chaos_width_determinism () =
  let scenarios = 6 and events = 120 and seed = 0x5eed in
  let seq, _ = Rkd.Chaos.run ~seed ~events ~scenarios () in
  let pool = Par.create ~domains:4 () in
  let par, _ =
    Fun.protect
      ~finally:(fun () -> Par.shutdown pool)
      (fun () -> Rkd.Chaos.run ~seed ~events ~pool ~scenarios ())
  in
  Alcotest.(check int) "no uncaught (seq)" 0 seq.Rkd.Chaos.total_uncaught;
  Alcotest.(check int) "no uncaught (par)" 0 par.Rkd.Chaos.total_uncaught;
  Alcotest.(check int) "every breaker re-closed (seq)" 0 seq.Rkd.Chaos.not_reclosed;
  Alcotest.(check int) "every breaker re-closed (par)" 0 par.Rkd.Chaos.not_reclosed;
  Alcotest.(check int) "bit-identical digest across pool widths"
    seq.Rkd.Chaos.digest par.Rkd.Chaos.digest

let suite =
  [ ( "fault",
      [ Alcotest.test_case "parse spec" `Quick test_fault_parse_spec;
        Alcotest.test_case "plan determinism" `Quick test_fault_plan_determinism;
        Alcotest.test_case "scoping" `Quick test_fault_scoping ] );
    ( "breaker",
      [ Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
        Alcotest.test_case "backoff growth" `Quick test_breaker_backoff_growth;
        Alcotest.test_case "jitter determinism" `Quick test_breaker_jitter_determinism ] );
    ( "guardrail_window",
      [ Alcotest.test_case "window and reset" `Quick test_guardrail_window_and_reset ] );
    ( "traps",
      [ Alcotest.test_case "surface as values" `Quick test_trap_surfaces_as_value;
        Alcotest.test_case "messages" `Quick test_trap_messages;
        Alcotest.test_case "div/mod extremes" `Quick test_div_mod_extremes ] );
    ( "canary",
      [ Alcotest.test_case "promote" `Quick test_canary_promote;
        Alcotest.test_case "divergent rolled back" `Quick test_canary_divergent_rolled_back;
        Alcotest.test_case "rollback during grace" `Quick test_canary_rollback_during_grace;
        Alcotest.test_case "cancel" `Quick test_canary_cancel ] );
    ( "model_update",
      [ Alcotest.test_case "checked swap, rollback, backoff" `Quick
          test_update_model_checked ] );
    ( "protected_pipeline",
      [ Alcotest.test_case "fallback on open" `Quick test_pipeline_fallback_on_open ] );
    ( "decode_fuzz",
      [ Alcotest.test_case "mutations never escape" `Quick test_decode_fuzz ] );
    ( "chaos",
      [ Alcotest.test_case "width determinism" `Slow test_chaos_width_determinism ] ) ]
