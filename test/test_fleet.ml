(* Fleet control plane (DESIGN.md section 17): width-deterministic soaks,
   drift-to-recovery behaviour, storm thrash bounds, telemetry views,
   Adapt band-edge regressions, cross-tenant backoff isolation and the
   serving layer's staged rollout. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_pool domains f =
  let pool = Par.create ~domains () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) (fun () -> f pool)

let one_pct =
  match Rmt.Fault.parse_spec "all:0.01" with
  | Ok specs -> specs
  | Error e -> failwith e

(* ---------------- Width determinism ---------------- *)

let same_report tag (a : Rkd.Fleet.report) (b : Rkd.Fleet.report) =
  check_int (tag ^ ": digest") a.Rkd.Fleet.digest b.Rkd.Fleet.digest;
  check_int (tag ^ ": events") a.Rkd.Fleet.events b.Rkd.Fleet.events;
  check_int (tag ^ ": episodes") a.Rkd.Fleet.episodes b.Rkd.Fleet.episodes;
  check_int (tag ^ ": installs") a.Rkd.Fleet.installs b.Rkd.Fleet.installs;
  check_int (tag ^ ": promotions") a.Rkd.Fleet.promotions b.Rkd.Fleet.promotions;
  check_int (tag ^ ": rollbacks") a.Rkd.Fleet.rollbacks b.Rkd.Fleet.rollbacks;
  check_int (tag ^ ": mean accuracy") a.Rkd.Fleet.mean_accuracy_milli
    b.Rkd.Fleet.mean_accuracy_milli

let test_width_determinism () =
  let seq = Rkd.Fleet.soak ~seed:0xf1ee7 () in
  let par = with_pool 4 (fun pool -> Rkd.Fleet.soak ~pool ~seed:0xf1ee7 ()) in
  same_report "clean" seq par

let test_width_determinism_faulted () =
  let seq = Rkd.Fleet.soak ~fault_specs:one_pct ~seed:0xf1ee7 () in
  let par =
    with_pool 4 (fun pool -> Rkd.Fleet.soak ~fault_specs:one_pct ~pool ~seed:0xf1ee7 ())
  in
  same_report "faulted" seq par

(* ---------------- Drift -> recovery ---------------- *)

let test_drift_recovery () =
  let r = Rkd.Fleet.soak ~seed:0xf1ee7 () in
  List.iter
    (fun (name, ok) -> check_bool name true ok)
    (Rkd.Report.fleet_checks r);
  check_bool "every tenant saw at least one drift episode" true
    (Array.for_all (fun v -> v.Rkd.Fleet.t_episodes >= 1) r.Rkd.Fleet.per_tenant)

(* ---------------- Storm: no thrash, breakers re-close -------------- *)

let test_storm_no_thrash () =
  let r =
    Rkd.Fleet.soak ~params:Rkd.Fleet.storm_params ~fault_specs:one_pct ~seed:0xf1ee7 ()
  in
  List.iter
    (fun (name, ok) -> check_bool name true ok)
    (Rkd.Report.fleet_checks ~faulted:true r);
  check_bool "bounded installs per episode under a drift storm" true
    (r.Rkd.Fleet.max_attempts <= 2);
  check_bool "breakers re-closed after the storm" true r.Rkd.Fleet.breakers_reclosed;
  check_int "no uncaught datapath exceptions" 0 r.Rkd.Fleet.uncaught

(* ---------------- Telemetry views + stripe guard ---------------- *)

let test_registry_views () =
  let fleet = Rkd.Fleet.create ~seed:0xf1ee7 () in
  for _ = 1 to 160 do
    Rkd.Fleet.tick fleet
  done;
  check_bool "recovered" true (Rkd.Fleet.recover fleet);
  let r = Rkd.Fleet.report fleet in
  let snap = Obs.Registry.snapshot () in
  let scalar name =
    match Obs.Snapshot.scalar snap name with
    | Some v -> v
    | None -> Alcotest.failf "registry view %s missing from snapshot" name
  in
  Array.iter
    (fun v ->
      let name suffix = Printf.sprintf "rmt.fleet.%d.%s" v.Rkd.Fleet.t_id suffix in
      check_int (name "accuracy") v.Rkd.Fleet.t_accuracy_milli (scalar (name "accuracy"));
      check_int (name "drift_episodes") v.Rkd.Fleet.t_episodes
        (scalar (name "drift_episodes"));
      check_int (name "rollbacks") v.Rkd.Fleet.t_rollbacks (scalar (name "rollbacks")))
    r.Rkd.Fleet.per_tenant;
  check_int "rmt.fleet.episodes" r.Rkd.Fleet.episodes (scalar "rmt.fleet.episodes");
  check_int "rmt.fleet.installs" r.Rkd.Fleet.installs (scalar "rmt.fleet.installs");
  check_int "rmt.fleet.promotions" r.Rkd.Fleet.promotions (scalar "rmt.fleet.promotions");
  check_int "rmt.fleet.rollbacks" r.Rkd.Fleet.rollbacks (scalar "rmt.fleet.rollbacks");
  check_int "rmt.fleet.deferred" r.Rkd.Fleet.deferred (scalar "rmt.fleet.deferred");
  (* The striped-counter overflow guard (shared with the serve fleet):
     ids beyond the stripe capacity must mask into range, not index out
     of bounds, and the high-water mark must record the overflow. *)
  let cap = Obs.stripe_capacity in
  check_int "in-range id maps to itself" 3 (Obs.stripe_of_id 3);
  let big = (cap * 5) + 1 in
  let s = Obs.stripe_of_id big in
  check_bool "overflow id is masked into range" true (s >= 0 && s < cap);
  check_bool "overflow high-water recorded" true (Obs.stripe_overflow_max_id () >= big)

(* ---------------- Adapt band-edge regressions ---------------- *)

(* A stream sitting exactly at [low] must not degrade: crossings are
   strict.  Starting with a correct observation keeps every partial
   window at or above 1/2. *)
let test_adapt_exact_low () =
  let m = Rkd.Adapt.create ~low:0.5 ~high:0.75 ~window:4 () in
  for i = 0 to 63 do
    Rkd.Adapt.observe m ~correct:(i land 1 = 0)
  done;
  check_bool "still normal at rate = low" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  check_int "no transitions at rate = low" 0 (Rkd.Adapt.transitions m)

(* Once degraded, a stream sitting exactly at [high] must not recover
   (and in particular must not oscillate). *)
let test_adapt_exact_high () =
  let m = Rkd.Adapt.create ~low:0.5 ~high:0.75 ~window:4 () in
  for _ = 1 to 4 do
    Rkd.Adapt.observe m ~correct:false
  done;
  check_bool "degraded" true (Rkd.Adapt.mode m = Rkd.Adapt.Conservative);
  (* Repeating c,c,c,i holds every full window at exactly 3/4. *)
  for i = 0 to 63 do
    Rkd.Adapt.observe m ~correct:(i mod 4 <> 3)
  done;
  check_bool "still conservative at rate = high" true
    (Rkd.Adapt.mode m = Rkd.Adapt.Conservative);
  check_int "one transition total" 1 (Rkd.Adapt.transitions m);
  for _ = 1 to 4 do
    Rkd.Adapt.observe m ~correct:true
  done;
  check_bool "recovers above high" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal)

(* Degenerate band, low = high: an exact-threshold stream triggers
   nothing, and repeated installs cannot be provoked from mode edges that
   never fire. *)
let test_adapt_degenerate_band () =
  let m = Rkd.Adapt.create ~low:0.5 ~high:0.5 ~window:4 () in
  for i = 0 to 255 do
    Rkd.Adapt.observe m ~correct:(i land 1 = 0)
  done;
  check_int "low = high never oscillates on the edge" 0 (Rkd.Adapt.transitions m)

(* The dwell floor: after a transition, the opposite crossing is refused
   until [dwell] further observations, then honoured. *)
let test_adapt_dwell () =
  let m = Rkd.Adapt.create ~low:0.5 ~high:0.6 ~window:4 ~dwell:50 () in
  for _ = 1 to 8 do
    Rkd.Adapt.observe m ~correct:false
  done;
  check_int "degrade fires once" 1 (Rkd.Adapt.transitions m);
  for _ = 1 to 8 do
    Rkd.Adapt.observe m ~correct:true
  done;
  check_bool "recovery held back inside the dwell" true
    (Rkd.Adapt.mode m = Rkd.Adapt.Conservative);
  check_int "no flap inside the dwell" 1 (Rkd.Adapt.transitions m);
  for _ = 1 to 50 do
    Rkd.Adapt.observe m ~correct:true
  done;
  check_bool "recovers once the dwell expires" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  check_int "exactly two transitions" 2 (Rkd.Adapt.transitions m)

(* ---------------- Two-tenant interleaved failures ---------------- *)

let tree_of rng =
  let ds = Kml.Dataset.create ~n_features:1 ~n_classes:2 in
  for _ = 1 to 32 do
    let x = Kml.Rng.int rng 100 in
    Kml.Dataset.add ds { Kml.Dataset.features = [| x |]; label = (if x >= 50 then 1 else 0) }
  done;
  Rmt.Model_store.Tree (Kml.Decision_tree.train ds)

(* Regression for the audit in {!Rmt.Control.update_model_checked}:
   backoff state is keyed per model name, so tenant A crash-looping its
   updates must never defer tenant B's, and each backoff expires on its
   own clock. *)
let test_backoff_isolation () =
  let rng = Kml.Rng.create 7 in
  let control = Rmt.Control.create ~seed:7 () in
  let now = ref 0 in
  Rmt.Control.set_clock control (fun () -> !now);
  ignore (Rmt.Control.register_model control ~name:"ta" (tree_of rng) : Rmt.Model_store.handle);
  ignore (Rmt.Control.register_model control ~name:"tb" (tree_of rng) : Rmt.Model_store.handle);
  let fail_update name =
    (* The probe demands predictions in [5, 9]; a binary tree cannot
       satisfy it, so the update rolls back and arms the backoff. *)
    Rmt.Control.update_model_checked control ~name ~samples:[ [| 10 |]; [| 90 |] ] ~lo:5
      ~hi:9 (tree_of rng)
  in
  let ok_update name =
    Rmt.Control.update_model_checked control ~name ~samples:[ [| 10 |]; [| 90 |] ] ~lo:0
      ~hi:1 (tree_of rng)
  in
  check_bool "A: bad update refused" true (Result.is_error (fail_update "ta"));
  check_bool "B: clean update unaffected by A's backoff" true (Result.is_ok (ok_update "tb"));
  check_bool "A: still in backoff" true (Result.is_error (ok_update "ta"));
  check_bool "B: bad update refused" true (Result.is_error (fail_update "tb"));
  now := 5_000_000;
  (* 5 ms of simulated clock clears both 1 ms first-failure backoffs. *)
  check_bool "A: recovers after its backoff" true (Result.is_ok (ok_update "ta"));
  check_bool "B: recovers after its backoff" true (Result.is_ok (ok_update "tb"))

let build_named name bias =
  let open Rmt in
  let b = Builder.create ~name ~vmem_size:1 () in
  Builder.add_capability b (Program.Guarded { lo = 0; hi = 1023 });
  Builder.emit b (Insn.Ld_ctxt_k (0, Rkd.Hooks.key_page));
  Builder.emit b (Insn.Alu_imm (Insn.Add, 0, bias));
  Builder.emit b (Insn.Alu_imm (Insn.Mod, 0, 1024));
  Builder.emit b Insn.Exit;
  Builder.finish b ()

(* Canary/grace state is per-Vm: staging tenant A's canary must leave
   tenant B idle, and rolling B back must not cancel A's pending canary. *)
let test_canary_isolation () =
  let control = Rmt.Control.create ~seed:11 () in
  (match Rmt.Control.install control (build_named "pa" 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install pa: %s" e);
  (match Rmt.Control.install control (build_named "pb" 2) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install pb: %s" e);
  (match Rmt.Control.install_canary control ~invocations:8 (build_named "pa" 3) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "canary pa: %s" e);
  let status name =
    match Rmt.Control.canary_status control name with
    | Some s -> s
    | None -> Alcotest.failf "%s installed" name
  in
  check_bool "A's canary pending" true
    (match status "pa" with `Canary _ -> true | _ -> false);
  check_bool "B untouched by A's canary" true (status "pb" = `Idle);
  check_bool "rolling back idle B is a no-op" false
    (Rmt.Control.rollback_program control "pb");
  check_bool "A's canary survives B's rollback" true
    (match status "pa" with `Canary _ -> true | _ -> false);
  check_bool "A's canary cancels" true (Rmt.Control.rollback_program control "pa");
  check_bool "A idle after cancel" true (status "pa" = `Idle)

(* ---------------- Serving-layer staged rollout ---------------- *)

let submit_exn fleet ~tenant ~page =
  match Serve.Serving.submit fleet ~producer:0 ~tenant ~page with
  | `Admitted -> ()
  | `Throttled | `Backpressure -> Alcotest.fail "inline submit refused"

(* One tenant pinned to each shard, so every stage's canary sees shadow
   traffic. *)
let shard_tenants fleet n =
  Array.init n (fun s ->
      let rec find t =
        if Serve.Serving.shard_of_tenant fleet t = s then t else find (t + 1)
      in
      find 0)

let test_serve_staged_rollout_promotes () =
  let config = { Serve.Serving.default_config with shards = 4; max_batch = 8 } in
  let fleet, dps = Serve.Serving.create_datapath ~config () in
  let tenants = shard_tenants fleet 4 in
  let now = ref 1_000 in
  Serve.Serving.set_now fleet !now;
  let prog = Rkd.Prefetch_rmt.build_collect_program Rkd.Prefetch_rmt.default_params in
  (* Identical program text fed a constant page stream: the collect
     program mutates its context (history shift, last-page store) and the
     shadow copy is taken after the incumbent ran, so only a fixed point
     of that mutation — delta 0 under a constant page — shadow-runs
     divergence-free.  Every stage then promotes under a zero-divergence
     budget. *)
  (match
     Serve.Serving.staged_rollout ~invocations:4 ~max_divergences:0 ~grace:2 fleet ~dps
       ~program:prog ()
   with
  | `Unhealthy -> Alcotest.fail "healthy fleet reported unhealthy"
  | `Failed n -> Alcotest.failf "identical rollout failed (%d rollbacks)" n
  | `Started r ->
    let rec loop i =
      if i > 500 then Alcotest.fail "rollout did not settle"
      else begin
        now := !now + 1_000_000;
        Serve.Serving.set_now fleet !now;
        Array.iter (fun t -> submit_exn fleet ~tenant:t ~page:0) tenants;
        ignore (Serve.Serving.drain fleet : int);
        match Rkd.Fleet.Rollout.step r ~now:!now with
        | `In_flight -> loop (i + 1)
        | `Promoted -> ()
        | `Failed n -> Alcotest.failf "identical rollout rolled back (%d)" n
      end
    in
    loop 0;
    check_int "one canary per shard" 4 (Rkd.Fleet.Rollout.installs r))

let test_serve_staged_rollout_fails_stage0 () =
  let config = { Serve.Serving.default_config with shards = 4; max_batch = 8 } in
  let fleet, dps = Serve.Serving.create_datapath ~config () in
  let tenants = shard_tenants fleet 4 in
  let now = ref 1_000 in
  Serve.Serving.set_now fleet !now;
  let before = Array.map (fun dp -> Rmt.Vm.loaded (Serve.Shard.Datapath.vm dp)) dps in
  (* A biased candidate: returns page mod 2 + 5000 where the incumbent
     collect program returns a clamped delta in [-4096, 4096] — every
     shadow invocation diverges, so the zero-divergence budget trips on
     the very first stage. *)
  let biased =
    let open Rmt in
    let b =
      Builder.create ~name:Serve.Shard.Datapath.program_name ~vmem_size:1 ()
    in
    Builder.emit b (Insn.Ld_ctxt_k (0, Rkd.Hooks.key_page));
    Builder.emit b (Insn.Alu_imm (Insn.Mod, 0, 2));
    Builder.emit b (Insn.Alu_imm (Insn.Add, 0, 5000));
    Builder.emit b Insn.Exit;
    Builder.finish b ()
  in
  (match
     Serve.Serving.staged_rollout ~invocations:4 ~max_divergences:0 ~grace:2 fleet ~dps
       ~program:biased ()
   with
  | `Unhealthy -> Alcotest.fail "healthy fleet reported unhealthy"
  | `Failed n -> Alcotest.failf "failed before shadow traffic (%d)" n
  | `Started r ->
    let rec loop i =
      if i > 500 then Alcotest.fail "divergent rollout never failed"
      else begin
        now := !now + 1_000_000;
        Serve.Serving.set_now fleet !now;
        Array.iter (fun t -> submit_exn fleet ~tenant:t ~page:0) tenants;
        ignore (Serve.Serving.drain fleet : int);
        match Rkd.Fleet.Rollout.step r ~now:!now with
        | `In_flight -> loop (i + 1)
        | `Promoted -> Alcotest.fail "divergent candidate promoted"
        | `Failed n -> n
      end
    in
    let rollbacks = loop 0 in
    check_bool "the divergence was rolled back" true (rollbacks >= 1);
    check_int "only stage 0 was ever installed" 1 (Rkd.Fleet.Rollout.installs r));
  (* Every shard still runs its incumbent, and no canary is left behind. *)
  Array.iteri
    (fun i dp ->
      check_bool
        (Printf.sprintf "shard %d incumbent untouched" i)
        true
        (Rmt.Vm.loaded (Serve.Shard.Datapath.vm dp) == before.(i));
      check_bool
        (Printf.sprintf "shard %d idle" i)
        true
        (Rmt.Control.canary_status (Serve.Shard.Datapath.control dp)
           Serve.Shard.Datapath.program_name
         = Some `Idle))
    dps

let suite =
  [ ( "fleet",
      [ Alcotest.test_case "soak digest identical across pool widths" `Slow
          test_width_determinism;
        Alcotest.test_case "faulted soak digest identical across pool widths" `Slow
          test_width_determinism_faulted;
        Alcotest.test_case "drift episodes retrain, promote and recover accuracy" `Slow
          test_drift_recovery;
        Alcotest.test_case "drift storm: bounded installs, breakers re-close" `Slow
          test_storm_no_thrash;
        Alcotest.test_case "registry views match the fleet report" `Slow
          test_registry_views;
        Alcotest.test_case "adapt: exact-low stream never degrades" `Quick
          test_adapt_exact_low;
        Alcotest.test_case "adapt: exact-high stream never recovers" `Quick
          test_adapt_exact_high;
        Alcotest.test_case "adapt: degenerate low = high band is quiet" `Quick
          test_adapt_degenerate_band;
        Alcotest.test_case "adapt: dwell floor prevents flapping" `Quick
          test_adapt_dwell;
        Alcotest.test_case "model-update backoff is per tenant" `Quick
          test_backoff_isolation;
        Alcotest.test_case "canary state is per program" `Quick test_canary_isolation;
        Alcotest.test_case "serve staged rollout promotes across shards" `Quick
          test_serve_staged_rollout_promotes;
        Alcotest.test_case "serve staged rollout fails fast and restores" `Quick
          test_serve_staged_rollout_fails_stage0
      ] )
  ]
