(* Tests for the kernel ML library: rng, tensor, dataset, metrics, window. *)
open Kml

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniformity () =
  let rng = Rng.create 42 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced (%d)" i c)
        true
        (abs (c - expected) < expected / 10))
    counts

let test_rng_gaussian_moments () =
  let rng = Rng.create 9 in
  let n = 50_000 in
  let sum = ref 0.0 and sum_sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sum_sq := !sum_sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum_sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let c0 = Rng.split parent 0 and c1 = Rng.split parent 1 in
  (* pure: deriving the same index twice yields the same stream, and the
     parent state is untouched by the derivations *)
  let c0' = Rng.split parent 0 in
  let a = Array.init 20 (fun _ -> Rng.next c0) in
  let a' = Array.init 20 (fun _ -> Rng.next c0') in
  let b = Array.init 20 (fun _ -> Rng.next c1) in
  let p = Array.init 20 (fun _ -> Rng.next parent) in
  Alcotest.(check (array int)) "same index, same stream" a a';
  Alcotest.(check bool) "sibling streams differ" true (a <> b);
  Alcotest.(check bool) "child differs from parent" true (a <> p && b <> p);
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.split: index must be non-negative")
    (fun () -> ignore (Rng.split parent (-1)))

(* The determinism contract of the parallel experiment engine rests on
   [split]: distinct task indices must give non-colliding, uncorrelated
   substreams.  Check that (a) the first draws of 512 sibling substreams
   are pairwise distinct and differ from the parent's own next draws, and
   (b) consecutive siblings' first draws look avalanche-mixed (mean
   Hamming distance of the 62 usable bits near 31). *)
let prop_split_substreams_independent =
  QCheck2.Test.make ~name:"split: sibling substreams non-colliding and mixed" ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let parent = Rng.create seed in
      let n = 512 in
      let firsts = Array.init n (fun i -> Rng.next (Rng.split parent i)) in
      let seen = Hashtbl.create (2 * n) in
      Array.iter (fun v -> Hashtbl.replace seen v ()) firsts;
      let pc = Rng.copy parent in
      let parent_draws = Array.init n (fun _ -> Rng.next pc) in
      let collides = Array.exists (fun v -> Hashtbl.mem seen v) parent_draws in
      let popcount x =
        let c = ref 0 and v = ref x in
        while !v <> 0 do
          c := !c + (!v land 1);
          v := !v lsr 1
        done;
        !c
      in
      let dist = ref 0 in
      for i = 0 to n - 2 do
        dist := !dist + popcount (firsts.(i) lxor firsts.(i + 1))
      done;
      let mean = float_of_int !dist /. float_of_int (n - 1) in
      Hashtbl.length seen = n && (not collides) && mean > 24.0 && mean < 38.0)

(* ---------------- Tensor ---------------- *)

let test_vec_dot () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-9)) "dot" 32.0 (Tensor.Vec.dot a b)

let test_vec_axpy () =
  let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
  Tensor.Vec.axpy ~alpha:2.0 ~x ~y;
  Alcotest.(check (float 1e-9)) "y0" 12.0 y.(0);
  Alcotest.(check (float 1e-9)) "y1" 24.0 y.(1)

let test_vec_max_index () =
  Alcotest.(check int) "argmax" 2 (Tensor.Vec.max_index [| 1.0; 3.0; 5.0; 2.0 |]);
  Alcotest.(check int) "tie -> first" 0 (Tensor.Vec.max_index [| 5.0; 5.0 |])

let test_mat_mul_vec () =
  let m = Tensor.Mat.init ~rows:2 ~cols:3 (fun i j -> float_of_int ((i * 3) + j)) in
  (* rows: [0 1 2], [3 4 5] *)
  let v = Tensor.Mat.mul_vec m [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "row0" 3.0 v.(0);
  Alcotest.(check (float 1e-9)) "row1" 12.0 v.(1)

let test_mat_tmul_vec () =
  let m = Tensor.Mat.init ~rows:2 ~cols:3 (fun i j -> float_of_int ((i * 3) + j)) in
  let v = Tensor.Mat.tmul_vec m [| 1.0; 2.0 |] in
  (* m^T * [1;2] = [0+6; 1+8; 2+10] *)
  Alcotest.(check (float 1e-9)) "c0" 6.0 v.(0);
  Alcotest.(check (float 1e-9)) "c1" 9.0 v.(1);
  Alcotest.(check (float 1e-9)) "c2" 12.0 v.(2)

let test_mat_mul () =
  let a = Tensor.Mat.init ~rows:2 ~cols:2 (fun i j -> float_of_int ((i * 2) + j + 1)) in
  (* [1 2; 3 4] *)
  let c = Tensor.Mat.mul a a in
  Alcotest.(check (float 1e-9)) "c00" 7.0 (Tensor.Mat.get c 0 0);
  Alcotest.(check (float 1e-9)) "c01" 10.0 (Tensor.Mat.get c 0 1);
  Alcotest.(check (float 1e-9)) "c10" 15.0 (Tensor.Mat.get c 1 0);
  Alcotest.(check (float 1e-9)) "c11" 22.0 (Tensor.Mat.get c 1 1)

let test_mat_bounds () =
  let m = Tensor.Mat.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "get oob" (Invalid_argument "Mat.get: out of bounds") (fun () ->
      ignore (Tensor.Mat.get m 2 0))

let test_qvec_dot_matches_float () =
  let a = [| 1.5; -2.25; 3.0 |] and b = [| 0.5; 1.0; -1.5 |] in
  let qa = Tensor.Qvec.of_vec a and qb = Tensor.Qvec.of_vec b in
  let expected = Tensor.Vec.dot a b in
  let got = Fixed.to_float (Tensor.Qvec.dot qa qb) in
  Alcotest.(check bool) "close" true (Float.abs (got -. expected) < 0.001)

let test_qmat_mul_vec_matches_float () =
  let m = Tensor.Mat.init ~rows:3 ~cols:4 (fun i j -> (float_of_int ((i * 4) + j) /. 7.0) -. 1.0) in
  let x = [| 0.5; -1.0; 2.0; 0.25 |] in
  let expected = Tensor.Mat.mul_vec m x in
  let got = Tensor.Qvec.to_vec (Tensor.Qmat.mul_vec (Tensor.Qmat.of_mat m) (Tensor.Qvec.of_vec x)) in
  Array.iteri
    (fun i e -> Alcotest.(check bool) "row close" true (Float.abs (got.(i) -. e) < 0.005))
    expected

(* ---------------- Dataset ---------------- *)

let mk_dataset () =
  let ds = Dataset.create ~n_features:2 ~n_classes:2 in
  List.iter
    (fun (f, l) -> Dataset.add ds { Dataset.features = f; label = l })
    [ ([| 0; 0 |], 0); ([| 0; 1 |], 0); ([| 5; 0 |], 1); ([| 5; 1 |], 1); ([| 5; 2 |], 1) ];
  ds

let test_dataset_basics () =
  let ds = mk_dataset () in
  Alcotest.(check int) "length" 5 (Dataset.length ds);
  Alcotest.(check int) "n_features" 2 (Dataset.n_features ds);
  Alcotest.(check (array int)) "class counts" [| 2; 3 |] (Dataset.class_counts ds);
  Alcotest.(check int) "majority" 1 (Dataset.majority_class ds)

let test_dataset_validation () =
  let ds = Dataset.create ~n_features:2 ~n_classes:2 in
  Alcotest.check_raises "bad arity" (Invalid_argument "Dataset.add: feature arity mismatch")
    (fun () -> Dataset.add ds { Dataset.features = [| 1 |]; label = 0 });
  Alcotest.check_raises "bad label" (Invalid_argument "Dataset.add: label out of range")
    (fun () -> Dataset.add ds { Dataset.features = [| 1; 2 |]; label = 2 })

let test_dataset_split () =
  let ds = Dataset.create ~n_features:1 ~n_classes:2 in
  for i = 0 to 99 do
    Dataset.add ds { Dataset.features = [| i |]; label = i mod 2 }
  done;
  let train, test = Dataset.split ds ~rng:(Rng.create 1) ~train_fraction:0.8 in
  Alcotest.(check int) "train size" 80 (Dataset.length train);
  Alcotest.(check int) "test size" 20 (Dataset.length test);
  (* no sample lost or duplicated *)
  let seen = Hashtbl.create 100 in
  Dataset.iter (fun s -> Hashtbl.replace seen s.Dataset.features.(0) ()) train;
  Dataset.iter (fun s -> Hashtbl.replace seen s.Dataset.features.(0) ()) test;
  Alcotest.(check int) "union covers all" 100 (Hashtbl.length seen)

let test_dataset_project () =
  let ds = mk_dataset () in
  let projected = Dataset.project ds ~keep:[| 1 |] in
  Alcotest.(check int) "one feature" 1 (Dataset.n_features projected);
  Alcotest.(check int) "first sample keeps col 1" 0 (Dataset.get projected 0).Dataset.features.(0);
  Alcotest.(check int) "last sample keeps col 1" 2 (Dataset.get projected 4).Dataset.features.(0)

let test_dataset_subset () =
  let ds = mk_dataset () in
  let sub = Dataset.subset ds [| 0; 4 |] in
  Alcotest.(check int) "size" 2 (Dataset.length sub);
  Alcotest.(check int) "second label" 1 (Dataset.get sub 1).Dataset.label

(* ---------------- Metrics ---------------- *)

let test_metrics_accuracy () =
  let c = Metrics.confusion_create ~n_classes:2 in
  Metrics.confusion_add c ~truth:0 ~predicted:0;
  Metrics.confusion_add c ~truth:0 ~predicted:1;
  Metrics.confusion_add c ~truth:1 ~predicted:1;
  Metrics.confusion_add c ~truth:1 ~predicted:1;
  Alcotest.(check (float 1e-9)) "accuracy" 0.75 (Metrics.accuracy c);
  Alcotest.(check (float 1e-9)) "precision cls1" (2.0 /. 3.0) (Metrics.precision c ~cls:1);
  Alcotest.(check (float 1e-9)) "recall cls1" 1.0 (Metrics.recall c ~cls:1);
  Alcotest.(check (float 1e-9)) "recall cls0" 0.5 (Metrics.recall c ~cls:0)

let test_metrics_empty () =
  let c = Metrics.confusion_create ~n_classes:3 in
  Alcotest.(check (float 1e-9)) "empty accuracy" 0.0 (Metrics.accuracy c);
  Alcotest.(check (float 1e-9)) "empty f1" 0.0 (Metrics.macro_f1 c)

let test_metrics_evaluate () =
  let ds = mk_dataset () in
  let predict features = if features.(0) > 2 then 1 else 0 in
  Alcotest.(check (float 1e-9)) "perfect separator" 1.0 (Metrics.accuracy_of ~predict ds)

(* ---------------- Window ---------------- *)

let test_window_eviction () =
  let w = Window.create ~capacity:3 ~retrain_period:10 in
  for i = 1 to 5 do
    Window.push w { Dataset.features = [| i |]; label = 0 }
  done;
  Alcotest.(check int) "capped" 3 (Window.length w);
  let ds = Window.to_dataset w ~n_features:1 ~n_classes:1 in
  Alcotest.(check int) "oldest evicted" 3 (Dataset.get ds 0).Dataset.features.(0);
  Alcotest.(check int) "newest kept" 5 (Dataset.get ds 2).Dataset.features.(0)

let test_window_due () =
  let w = Window.create ~capacity:10 ~retrain_period:3 in
  Alcotest.(check bool) "not due when empty" false (Window.due w);
  Window.push w { Dataset.features = [| 1 |]; label = 0 };
  Window.push w { Dataset.features = [| 2 |]; label = 0 };
  Alcotest.(check bool) "not due yet" false (Window.due w);
  Window.push w { Dataset.features = [| 3 |]; label = 0 };
  Alcotest.(check bool) "due after period" true (Window.due w);
  Window.reset_due w;
  Alcotest.(check bool) "reset" false (Window.due w);
  Window.clear w;
  Alcotest.(check int) "cleared" 0 (Window.length w)

let prop_window_never_exceeds_capacity =
  QCheck2.Test.make ~name:"window length <= capacity" ~count:200
    QCheck2.Gen.(pair (int_range 1 20) (list_size (int_range 0 100) small_nat))
    (fun (cap, pushes) ->
      let w = Window.create ~capacity:cap ~retrain_period:1 in
      List.iter (fun v -> Window.push w { Dataset.features = [| v |]; label = 0 }) pushes;
      Window.length w <= cap && Window.length w = min cap (List.length pushes))

let suite =
  [ ( "rng",
      [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        QCheck_alcotest.to_alcotest prop_split_substreams_independent ] );
    ( "tensor",
      [ Alcotest.test_case "vec dot" `Quick test_vec_dot;
        Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
        Alcotest.test_case "vec max_index" `Quick test_vec_max_index;
        Alcotest.test_case "mat mul_vec" `Quick test_mat_mul_vec;
        Alcotest.test_case "mat tmul_vec" `Quick test_mat_tmul_vec;
        Alcotest.test_case "mat mul" `Quick test_mat_mul;
        Alcotest.test_case "mat bounds" `Quick test_mat_bounds;
        Alcotest.test_case "qvec dot matches float" `Quick test_qvec_dot_matches_float;
        Alcotest.test_case "qmat mul matches float" `Quick test_qmat_mul_vec_matches_float ] );
    ( "dataset",
      [ Alcotest.test_case "basics" `Quick test_dataset_basics;
        Alcotest.test_case "validation" `Quick test_dataset_validation;
        Alcotest.test_case "split" `Quick test_dataset_split;
        Alcotest.test_case "project" `Quick test_dataset_project;
        Alcotest.test_case "subset" `Quick test_dataset_subset ] );
    ( "metrics",
      [ Alcotest.test_case "accuracy/precision/recall" `Quick test_metrics_accuracy;
        Alcotest.test_case "empty" `Quick test_metrics_empty;
        Alcotest.test_case "evaluate" `Quick test_metrics_evaluate ] );
    ( "window",
      [ Alcotest.test_case "eviction" `Quick test_window_eviction;
        Alcotest.test_case "due/reset" `Quick test_window_due;
        QCheck_alcotest.to_alcotest prop_window_never_exceeds_capacity ] ) ]
