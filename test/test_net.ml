(* Tests for the network datapath (DESIGN.md section 16): integer cube
   root, the Cubic and BBR baseline controllers, same-timestamp event
   ordering in the DES core, simulator determinism, and the learned
   net.cc decision point's failsafe + pool-width contracts. *)

let ms n = n * 1_000_000

(* A synthetic ACK-time signal; defaults model a 10 ms path. *)
let mk ?(rtt = ms 10) ?(min_rtt = ms 10) ?(srtt = ms 10) ?(ecn = false) ?(loss = false)
    ?(cwnd = 4) ?(delivered = 0) ?(rate = 0) now =
  { Ksim.Cc.now;
    rtt_ns = rtt;
    min_rtt_ns = min_rtt;
    srtt_ns = srtt;
    ecn;
    loss;
    inflight = cwnd;
    cwnd;
    delivered;
    delivery_rate = rate }

(* ---------------- icbrt ---------------- *)

let test_icbrt () =
  for n = 0 to 5_000 do
    let r = Ksim.Cc.icbrt n in
    Alcotest.(check bool)
      (Printf.sprintf "icbrt %d = %d" n r)
      true
      (r * r * r <= n && (r + 1) * (r + 1) * (r + 1) > n)
  done;
  for r = 1 to 200 do
    let c = r * r * r in
    Alcotest.(check int) "exact cube" r (Ksim.Cc.icbrt c);
    Alcotest.(check int) "cube - 1" (r - 1) (Ksim.Cc.icbrt (c - 1));
    Alcotest.(check int) "cube + 1" r (Ksim.Cc.icbrt (c + 1))
  done;
  Alcotest.(check int) "negative" 0 (Ksim.Cc.icbrt (-5));
  let big = 4_611_686_018_427_387_903 in
  let r = Ksim.Cc.icbrt big in
  Alcotest.(check bool) "62-bit input" true (r > 0 && r <= big / (r * r))

(* ---------------- Cubic ---------------- *)

let test_cubic_slow_start_and_backoff () =
  let st = Ksim.Cc.Cubic.create () in
  (* Slow start: +1 per ack until the first congestion signal. *)
  for i = 1 to 96 do
    ignore (Ksim.Cc.Cubic.on_signal st (mk ~cwnd:(Ksim.Cc.Cubic.cwnd st) (ms i)))
  done;
  Alcotest.(check int) "slow-start growth" 100 (Ksim.Cc.Cubic.cwnd st);
  Alcotest.(check bool) "still in slow start" true (Ksim.Cc.Cubic.in_slow_start st);
  (* Loss: beta = 0.7 multiplicative decrease, w_max records the peak. *)
  let d = Ksim.Cc.Cubic.on_signal st (mk ~loss:true (ms 200)) in
  Alcotest.(check int) "beta backoff" 70 d.Ksim.Cc.cwnd;
  Alcotest.(check int) "w_max recorded" 100 (Ksim.Cc.Cubic.w_max st);
  Alcotest.(check bool) "left slow start" false (Ksim.Cc.Cubic.in_slow_start st);
  (* A loss burst within one smoothed RTT reduces only once. *)
  let d2 = Ksim.Cc.Cubic.on_signal st (mk ~loss:true (ms 201)) in
  Alcotest.(check int) "per-RTT reduction guard" 70 d2.Ksim.Cc.cwnd;
  (* Concave-then-convex regrowth: K = cbrt(30/0.4) ~ 4.2 s, so two
     seconds in the window is still below the old peak, and nine seconds
     in it must have overshot it. *)
  for i = 1 to 2_000 do
    ignore (Ksim.Cc.Cubic.on_signal st (mk (ms (210 + i))))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "concave region below w_max (cwnd %d)" (Ksim.Cc.Cubic.cwnd st))
    true
    (Ksim.Cc.Cubic.cwnd st < 100);
  for i = 2_001 to 9_000 do
    ignore (Ksim.Cc.Cubic.on_signal st (mk (ms (210 + i))))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "convex region above w_max (cwnd %d)" (Ksim.Cc.Cubic.cwnd st))
    true
    (Ksim.Cc.Cubic.cwnd st > 100)

let test_cubic_ecn_gentler () =
  let st = Ksim.Cc.Cubic.create () in
  for i = 1 to 96 do
    ignore (Ksim.Cc.Cubic.on_signal st (mk (ms i)))
  done;
  let d = Ksim.Cc.Cubic.on_signal st (mk ~ecn:true (ms 200)) in
  Alcotest.(check int) "ECN backoff is gentler than loss" 85 d.Ksim.Cc.cwnd

(* ---------------- BBR ---------------- *)

let test_bbr_startup_exit_and_gain_cycle () =
  let st = Ksim.Cc.Bbr.create () in
  Alcotest.(check bool) "starts in startup" true (Ksim.Cc.Bbr.in_startup st);
  (* Ramp the delivery rate, then hold it flat: three flat rounds end
     startup, one min-RTT of drain enters the probe-bw cycle. *)
  let now = ref 0 in
  let step rate =
    now := !now + ms 10;
    Ksim.Cc.Bbr.on_signal st (mk ~rate !now)
  in
  List.iter (fun r -> ignore (step r)) [ 1_000; 2_000; 4_000; 8_000 ];
  Alcotest.(check bool) "growing estimate keeps startup" true (Ksim.Cc.Bbr.in_startup st);
  List.iter (fun r -> ignore (step r)) [ 8_000; 8_000; 8_000 ];
  Alcotest.(check bool) "plateau exits startup" false (Ksim.Cc.Bbr.in_startup st);
  Alcotest.(check int) "bottleneck estimate" 8_000 (Ksim.Cc.Bbr.btl_bw st);
  (* Drain lasts one min-RTT, then the 8-phase gain cycle advances one
     phase per min-RTT, wrapping around. *)
  ignore (step 8_000);
  Alcotest.(check int) "probe-bw entered at phase 0" 0 (Ksim.Cc.Bbr.phase st);
  let pacing_at_phase = Array.make (Array.length Ksim.Cc.Bbr.gain_cycle) 0 in
  let phases = ref [] in
  for _ = 1 to 16 do
    let d = step 8_000 in
    let p = Ksim.Cc.Bbr.phase st in
    if pacing_at_phase.(p) = 0 then pacing_at_phase.(p) <- d.Ksim.Cc.pacing_ns;
    phases := p :: !phases
  done;
  Alcotest.(check (list int)) "gain cycle wraps in order"
    [ 1; 2; 3; 4; 5; 6; 7; 0; 1; 2; 3; 4; 5; 6; 7; 0 ]
    (List.rev !phases);
  Alcotest.(check bool) "probe gain paces faster than drain gain" true
    (pacing_at_phase.(0) < pacing_at_phase.(1));
  (* cwnd = 2 * BDP = 2 * 8000 pkt/s * 10 ms. *)
  Alcotest.(check int) "cwnd caps at twice the pipe" 160
    (step 8_000).Ksim.Cc.cwnd

(* ---------------- Event queue tie-breaking ---------------- *)

(* Regression: same-timestamp events must pop in insertion order even
   under heavy push/pop interleaving (heap reshuffles on every pop). *)
let test_event_queue_fifo_ties () =
  let q = Ksim.Event_queue.create () in
  for i = 0 to 99 do
    Ksim.Event_queue.push q ~time:7 i
  done;
  let popped = ref [] in
  for _ = 1 to 50 do
    match Ksim.Event_queue.pop q with
    | Some (7, v) -> popped := v :: !popped
    | _ -> Alcotest.fail "expected a time-7 event"
  done;
  for i = 100 to 149 do
    Ksim.Event_queue.push q ~time:7 i
  done;
  while not (Ksim.Event_queue.is_empty q) do
    match Ksim.Event_queue.pop q with
    | Some (7, v) -> popped := v :: !popped
    | _ -> Alcotest.fail "expected a time-7 event"
  done;
  Alcotest.(check (list int)) "FIFO among equal timestamps" (List.init 150 Fun.id)
    (List.rev !popped);
  (* Mixed timestamps: earlier times first, FIFO within each time. *)
  let q = Ksim.Event_queue.create () in
  let seq = [ (3, 0); (1, 1); (3, 2); (2, 3); (1, 4); (2, 5); (3, 6); (1, 7) ] in
  List.iter (fun (time, v) -> Ksim.Event_queue.push q ~time v) seq;
  ignore (Ksim.Event_queue.pop q);
  (* interleaved push after a pop *)
  Ksim.Event_queue.push q ~time:1 8;
  Ksim.Event_queue.push q ~time:3 9;
  let rest = ref [] in
  while not (Ksim.Event_queue.is_empty q) do
    match Ksim.Event_queue.pop q with
    | Some (t, v) -> rest := (t, v) :: !rest
    | None -> ()
  done;
  Alcotest.(check (list (pair int int))) "time order then insertion order"
    [ (1, 4); (1, 7); (1, 8); (2, 3); (2, 5); (3, 0); (3, 2); (3, 6); (3, 9) ]
    (List.rev !rest)

(* ---------------- Simulator ---------------- *)

let test_net_sim_single_flow () =
  let spec = { Ksim.Flow.id = 1; start_ns = 0; size_pkts = 200; base_rtt_ns = ms 10 } in
  let run () = Ksim.Net_sim.run ~make_cc:(fun _ -> Ksim.Cc.cubic ()) [| spec |] in
  let r = run () in
  Alcotest.(check int) "all packets delivered" 200 r.Ksim.Net_sim.delivered_pkts;
  Alcotest.(check int) "no censored flows" 0 r.Ksim.Net_sim.incomplete;
  Alcotest.(check bool) "positive goodput" true (r.Ksim.Net_sim.goodput_mbps > 0.0);
  Alcotest.(check bool) "fct recorded" true r.Ksim.Net_sim.flows.(0).Ksim.Net_sim.f_completed;
  let r2 = run () in
  Alcotest.(check int) "repeat run digest" r.Ksim.Net_sim.digest r2.Ksim.Net_sim.digest;
  Alcotest.(check (float 1e-9)) "repeat run goodput" r.Ksim.Net_sim.goodput_mbps
    r2.Ksim.Net_sim.goodput_mbps

let test_net_sim_fairness () =
  let s = Ksim.Workload_net.stream () in
  let r =
    Ksim.Net_sim.run ~config:s.Ksim.Workload_net.config
      ~make_cc:(fun _ -> Ksim.Cc.cubic ())
      s.Ksim.Workload_net.flows
  in
  Alcotest.(check int) "all flows finish" 0 r.Ksim.Net_sim.incomplete;
  Alcotest.(check bool)
    (Printf.sprintf "identical long flows share fairly (jain %.3f)" r.Ksim.Net_sim.fairness)
    true
    (r.Ksim.Net_sim.fairness >= 0.9)

(* ---------------- Learned net.cc failsafe ---------------- *)

(* With the engine trapping on every invocation the breaker must serve
   the genuine stock-Cubic trajectory, then re-close once faults stop. *)
let test_net_rmt_fallback_matches_stock () =
  let net = Rkd.Net_rmt.create ~seed:7 () in
  let mirror = Ksim.Cc.Cubic.create () in
  Rmt.Fault.with_plan ~seed:0xbad [ (Rmt.Fault.Engine_trap, 1.0) ] (fun () ->
      for e = 1 to 64 do
        let loss = e mod 17 = 0 in
        let s = mk ~loss ~cwnd:(Ksim.Cc.Cubic.cwnd mirror) (ms e) in
        let d = Rkd.Net_rmt.decide net ~flow:1 s in
        let expected = Ksim.Cc.Cubic.on_signal mirror s in
        Alcotest.(check int)
          (Printf.sprintf "event %d serves the stock cwnd" e)
          expected.Ksim.Cc.cwnd d.Ksim.Cc.cwnd
      done);
  let st = Rkd.Net_rmt.stats net in
  Alcotest.(check bool) "breaker tripped" true (st.Rkd.Net_rmt.breaker_trips > 0);
  Alcotest.(check bool) "fallbacks served" true (st.Rkd.Net_rmt.fallback_decisions > 0);
  Alcotest.(check int) "no learned decisions got through" 0
    (st.Rkd.Net_rmt.decisions - st.Rkd.Net_rmt.stock_decisions);
  (* Fault-free recovery: advance the clock well past the backoff. *)
  let e = ref 64 in
  while
    Rmt.Breaker.state (Rkd.Net_rmt.breaker net) <> Rmt.Breaker.Closed && !e < 64 + 4096
  do
    incr e;
    ignore (Rkd.Net_rmt.decide net ~flow:1 (mk (ms (!e * 2))))
  done;
  Alcotest.(check bool) "breaker re-closed" true
    (Rmt.Breaker.state (Rkd.Net_rmt.breaker net) = Rmt.Breaker.Closed)

(* ---------------- Table 3 determinism + shape ---------------- *)

let with_widths widths f =
  let saved = Par.global_domains () in
  Fun.protect
    ~finally:(fun () -> Par.set_global_domains saved)
    (fun () ->
      List.map
        (fun w ->
          Par.set_global_domains w;
          f w)
        widths)

let test_table3_width_determinism () =
  let digests =
    with_widths [ 1; 4; 8 ] (fun _ ->
        Rkd.Experiment.table3_digest
          (Rkd.Experiment.table3 ~faults:[] ~mixes:[ "incast" ] ()))
  in
  match digests with
  | [ d1; d4; d8 ] ->
    Alcotest.(check int) "width 1 = width 4" d1 d4;
    Alcotest.(check int) "width 1 = width 8" d1 d8
  | _ -> assert false

let test_table3_faulted_determinism () =
  let plan =
    match Rmt.Fault.parse_spec "all:0.01" with Ok p -> p | Error e -> Alcotest.fail e
  in
  let runs =
    with_widths [ 1; 4 ] (fun _ ->
        let rows = Rkd.Experiment.table3 ~faults:plan ~mixes:[ "incast" ] () in
        (Rkd.Experiment.table3_digest rows,
         List.fold_left (fun a r -> a + r.Rkd.Experiment.net_fallbacks) 0 rows))
  in
  match runs with
  | [ (d1, f1); (d4, f4) ] ->
    Alcotest.(check int) "faulted digests identical across widths" d1 d4;
    Alcotest.(check int) "same fallback count" f1 f4;
    Alcotest.(check bool) "faults actually forced fallbacks" true (f1 > 0)
  | _ -> assert false

let test_table3_learned_beats_worse_baseline () =
  let rows = Rkd.Experiment.table3 ~faults:[] () in
  Alcotest.(check int) "rows = mixes x systems"
    (List.length Ksim.Workload_net.names * List.length Rkd.Experiment.net_systems)
    (List.length rows);
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (Rkd.Report.net_checks rows)

let suite =
  [ ( "net",
      [ Alcotest.test_case "icbrt" `Quick test_icbrt;
        Alcotest.test_case "cubic slow start, backoff, regrowth" `Quick
          test_cubic_slow_start_and_backoff;
        Alcotest.test_case "cubic ECN gentler than loss" `Quick test_cubic_ecn_gentler;
        Alcotest.test_case "bbr startup exit and gain cycle" `Quick
          test_bbr_startup_exit_and_gain_cycle;
        Alcotest.test_case "event queue FIFO ties under interleaving" `Quick
          test_event_queue_fifo_ties;
        Alcotest.test_case "single-flow sim, repeatable" `Quick test_net_sim_single_flow;
        Alcotest.test_case "stream fairness" `Quick test_net_sim_fairness;
        Alcotest.test_case "breaker fallback = stock cubic" `Quick
          test_net_rmt_fallback_matches_stock;
        Alcotest.test_case "table3 width determinism" `Quick test_table3_width_determinism;
        Alcotest.test_case "table3 faulted determinism" `Quick
          test_table3_faulted_determinism;
        Alcotest.test_case "table3 learned beats worse baseline" `Slow
          test_table3_learned_beats_worse_baseline ] ) ]
