(* lib/obs: counters, histograms, flight recorder, registry, exporters.

   The contract under test (DESIGN.md section 11): write-side primitives
   never allocate in steady state, totals are exact under domain fan-out
   at any pool width, the trace ring wraps/drops as documented, and the
   JSON exporter round-trips snapshots bit-for-bit. *)

let now0 () = 0

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ---------------- scalars ---------------- *)

let test_counter_basics () =
  let c = Obs.Counter.make "test.obs.counter_basics" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Obs.Counter.add c 5;
  Alcotest.(check int) "incr and add sum" 7 (Obs.Counter.value c);
  (* [make] is an interning point: same name = same counter. *)
  let c' = Obs.Counter.make "test.obs.counter_basics" in
  Obs.Counter.incr c';
  Alcotest.(check int) "same name shares storage" 8 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test.obs.counter_basics" (Obs.Counter.name c);
  (* Disabled: a flag load and nothing else. *)
  Obs.set_enabled false;
  Obs.Counter.incr c;
  Obs.Counter.add c 100;
  Obs.set_enabled true;
  Alcotest.(check int) "disabled writes are dropped" 8 (Obs.Counter.value c)

let test_gauge_basics () =
  let g = Obs.Gauge.make "test.obs.gauge_basics" in
  Obs.Gauge.add g 10;
  Obs.Gauge.sub g 3;
  Alcotest.(check int) "add/sub" 7 (Obs.Gauge.value g);
  Obs.Gauge.set g 42;
  Alcotest.(check int) "set clears other stripes" 42 (Obs.Gauge.value g)

(* ---------------- histograms ---------------- *)

let test_histo_bucketing () =
  Alcotest.(check int) "negative -> bucket 0" 0 (Obs.Histo.bucket_of_value (-5));
  Alcotest.(check int) "zero -> bucket 0" 0 (Obs.Histo.bucket_of_value 0);
  Alcotest.(check int) "one -> bucket 0" 0 (Obs.Histo.bucket_of_value 1);
  Alcotest.(check int) "two -> bucket 1" 1 (Obs.Histo.bucket_of_value 2);
  Alcotest.(check int) "three -> bucket 1" 1 (Obs.Histo.bucket_of_value 3);
  Alcotest.(check int) "four -> bucket 2" 2 (Obs.Histo.bucket_of_value 4);
  Alcotest.(check int) "1023 -> bucket 9" 9 (Obs.Histo.bucket_of_value 1023);
  Alcotest.(check int) "1024 -> bucket 10" 10 (Obs.Histo.bucket_of_value 1024);
  (* 63-bit OCaml ints: max_int = 2^62 - 1 lands in bucket 61 < 64. *)
  Alcotest.(check bool) "max_int fits the fixed buckets" true
    (Obs.Histo.bucket_of_value max_int < Obs.Histo.n_buckets);
  (* Bucket bounds partition the int range. *)
  Alcotest.(check int) "bucket 0 lo" 0 (Obs.Histo.bucket_lo 0);
  Alcotest.(check int) "bucket 0 hi" 1 (Obs.Histo.bucket_hi 0);
  Alcotest.(check int) "bucket 10 lo" 1024 (Obs.Histo.bucket_lo 10);
  Alcotest.(check int) "bucket 9 hi" 1023 (Obs.Histo.bucket_hi 9);
  Alcotest.(check int) "last bucket hi" max_int (Obs.Histo.bucket_hi 63);
  Alcotest.(check int) "top reachable bucket hi" max_int (Obs.Histo.bucket_hi 61);
  for k = 1 to 61 do
    Alcotest.(check int)
      (Printf.sprintf "bucket %d boundary round-trips" k)
      k
      (Obs.Histo.bucket_of_value (Obs.Histo.bucket_lo k))
  done

let test_histo_observe_and_percentile () =
  let h = Obs.Histo.make "test.obs.histo_pct" in
  Alcotest.(check int) "empty percentile" 0 (Obs.Histo.percentile h 0.5);
  for _ = 1 to 50 do
    Obs.Histo.observe h 1
  done;
  for _ = 1 to 50 do
    Obs.Histo.observe h 1000
  done;
  Alcotest.(check int) "count" 100 (Obs.Histo.count h);
  Alcotest.(check int) "sum" (50 + 50_000) (Obs.Histo.sum h);
  let b = Obs.Histo.buckets h in
  Alcotest.(check int) "low bucket" 50 b.(0);
  Alcotest.(check int) "1000 bucket" 50 b.(9);
  (* p25 falls in the low half, p90 in the 1000s bucket (upper bound). *)
  Alcotest.(check int) "p25" 1 (Obs.Histo.percentile h 0.25);
  Alcotest.(check int) "p90" 1023 (Obs.Histo.percentile h 0.9);
  Alcotest.(check int) "p0 clamps to first observation" 1 (Obs.Histo.percentile h (-1.0));
  Alcotest.(check int) "p1 clamps to last" 1023 (Obs.Histo.percentile h 2.0)

(* ---------------- steady-state allocation ---------------- *)

(* Same pattern as test_datapath: Gc.minor_words itself boxes a float, so
   allow a few words of measurement noise; a single word allocated per
   call would cost >= 10_000. *)
let check_zero_alloc name f =
  for _ = 1 to 100 do
    f ()
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    f ()
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "%s allocated %.0f minor words over 10k calls" name delta

let test_zero_alloc_primitives () =
  let c = Obs.Counter.make "test.obs.zero_alloc_counter" in
  let h = Obs.Histo.make "test.obs.zero_alloc_histo" in
  check_zero_alloc "Counter.incr" (fun () -> Obs.Counter.incr c);
  check_zero_alloc "Counter.add" (fun () -> Obs.Counter.add c 3);
  check_zero_alloc "Histo.observe" (fun () -> Obs.Histo.observe h 777);
  check_zero_alloc "Trace.emit" (fun () ->
      Obs.Trace.emit ~hook:1 ~uid:2 ~engine:1 ~steps:9 ~elided:2 ~result:1 ~flags:0);
  Obs.set_enabled false;
  check_zero_alloc "disabled Counter.incr" (fun () -> Obs.Counter.incr c);
  check_zero_alloc "disabled Trace.emit" (fun () ->
      Obs.Trace.emit ~hook:1 ~uid:2 ~engine:1 ~steps:9 ~elided:2 ~result:1 ~flags:0);
  Obs.set_enabled true

(* ---------------- exactness under domain fan-out ---------------- *)

let test_counter_exact_under_par () =
  let saved = Par.global_domains () in
  Fun.protect
    ~finally:(fun () -> Par.set_global_domains saved)
    (fun () ->
      List.iter
        (fun width ->
          Par.set_global_domains width;
          let c = Obs.Counter.make (Printf.sprintf "test.obs.par.%d" width) in
          let h = Obs.Histo.make (Printf.sprintf "test.obs.par_h.%d" width) in
          let inputs = Array.init 512 (fun i -> i) in
          let _ =
            Par.parallel_map_array (Par.global ())
              (fun i ->
                Obs.Counter.incr c;
                Obs.Counter.add c 2;
                Obs.Histo.observe h (i + 1);
                i)
              inputs
          in
          (* Striped atomic cells: totals are exact at every width. *)
          Alcotest.(check int)
            (Printf.sprintf "counter exact at width %d" width)
            (512 * 3) (Obs.Counter.value c);
          Alcotest.(check int)
            (Printf.sprintf "histo count exact at width %d" width)
            512 (Obs.Histo.count h);
          Alcotest.(check int)
            (Printf.sprintf "histo sum exact at width %d" width)
            (512 * 513 / 2)
            (Obs.Histo.sum h))
        [ 1; 2; 4; 8 ])

(* ---------------- flight recorder ---------------- *)

let emit_n ?(start = 0) n =
  for i = start to start + n - 1 do
    Obs.Trace.emit ~hook:1 ~uid:7 ~engine:1 ~steps:i ~elided:0 ~result:(i * 2) ~flags:0
  done

let test_trace_wrap_and_drop () =
  Fun.protect
    ~finally:(fun () -> Obs.Trace.configure ~capacity:1024)
    (fun () ->
      Obs.Trace.configure ~capacity:8;
      Alcotest.(check int) "capacity rounds to power of two" 8 (Obs.Trace.capacity ());
      Alcotest.(check int) "configure resets emitted" 0 (Obs.Trace.emitted ());
      emit_n 20;
      Alcotest.(check int) "emitted counts accepted events" 20 (Obs.Trace.emitted ());
      Alcotest.(check int) "no drops while unfrozen" 0 (Obs.Trace.dropped ());
      let events = Obs.Trace.last 100 in
      Alcotest.(check int) "wrap keeps only capacity events" 8 (List.length events);
      List.iteri
        (fun i (e : Obs.Trace.event) ->
          Alcotest.(check int) "oldest-first seqs" (12 + i) e.Obs.Trace.seq;
          Alcotest.(check int) "payload survives wrap" (e.Obs.Trace.seq * 2)
            e.Obs.Trace.result)
        events;
      Alcotest.(check int) "last n < capacity" 3 (List.length (Obs.Trace.last 3));
      (* Frozen ring: emitters drop and count instead of overwriting. *)
      Obs.Trace.freeze ();
      emit_n ~start:20 2;
      Alcotest.(check int) "frozen drops" 2 (Obs.Trace.dropped ());
      Alcotest.(check int) "frozen does not emit" 20 (Obs.Trace.emitted ());
      Alcotest.(check int) "frozen snapshot stable" 8 (List.length (Obs.Trace.last 100));
      Obs.Trace.unfreeze ();
      emit_n ~start:22 1;
      Alcotest.(check int) "resumes after unfreeze" 21 (Obs.Trace.emitted ()))

let test_trace_capacity_clamps () =
  Fun.protect
    ~finally:(fun () -> Obs.Trace.configure ~capacity:1024)
    (fun () ->
      Obs.Trace.configure ~capacity:1000;
      Alcotest.(check int) "rounds up" 1024 (Obs.Trace.capacity ());
      Obs.Trace.configure ~capacity:1;
      Alcotest.(check int) "clamps below" 8 (Obs.Trace.capacity ()))

let test_trace_hook_attribution () =
  let id = Obs.intern "test/hook" in
  Alcotest.(check int) "intern is stable" id (Obs.intern "test/hook");
  Alcotest.(check string) "intern_name inverts" "test/hook" (Obs.intern_name id);
  Alcotest.(check bool) "unknown ids print as ?id" true
    (String.length (Obs.intern_name 99_999) > 1);
  Obs.Trace.set_current_hook id;
  Alcotest.(check int) "ambient hook" id (Obs.Trace.current_hook ());
  Obs.Trace.set_current_hook (-1);
  Alcotest.(check int) "cleared" (-1) (Obs.Trace.current_hook ())

(* ---------------- registry, snapshots, exporters ---------------- *)

let test_snapshot_diff_and_views () =
  let c = Obs.Counter.make "test.obs.diff_counter" in
  let cell = ref 10 in
  Obs.Registry.register_view "test.obs.view" (fun () -> !cell);
  let before = Obs.Registry.snapshot () in
  Alcotest.(check (option int)) "view visible" (Some 10)
    (Obs.Snapshot.scalar before "test.obs.view");
  Obs.Counter.add c 4;
  cell := 25;
  let after = Obs.Registry.snapshot () in
  let d = Obs.Snapshot.diff ~before ~after in
  Alcotest.(check (option int)) "counter delta" (Some 4)
    (Obs.Snapshot.scalar d "test.obs.diff_counter");
  Alcotest.(check (option int)) "view delta" (Some 15) (Obs.Snapshot.scalar d "test.obs.view");
  Obs.Registry.unregister_view "test.obs.view";
  let gone = Obs.Registry.snapshot () in
  Alcotest.(check (option int)) "unregistered view absent" None
    (Obs.Snapshot.scalar gone "test.obs.view");
  (* Reinstalling under the same name replaces the closure. *)
  Obs.Registry.register_view "test.obs.view" (fun () -> 1);
  Obs.Registry.register_view "test.obs.view" (fun () -> 2);
  let s = Obs.Registry.snapshot () in
  Alcotest.(check (option int)) "re-register replaces" (Some 2)
    (Obs.Snapshot.scalar s "test.obs.view");
  Obs.Registry.unregister_view "test.obs.view"

let test_snapshot_sorted_and_text () =
  let _ = Obs.Counter.make "test.obs.zzz" in
  let _ = Obs.Counter.make "test.obs.aaa" in
  let s = Obs.Registry.snapshot () in
  let names = Array.map (fun (n, _, _) -> n) s.Obs.Snapshot.scalars in
  let sorted = Array.copy names in
  Array.sort compare sorted;
  Alcotest.(check bool) "scalars sorted by name" true (names = sorted);
  let text = Obs.Snapshot.to_text s in
  Alcotest.(check bool) "text lists metrics" true
    (String.length text > 0
    && contains ~affix:"test.obs.aaa" text
    && contains ~affix:"trace.emitted" text)

let test_json_round_trip () =
  let h = Obs.Histo.make "test.obs.json_histo" in
  Obs.Histo.observe h 3;
  Obs.Histo.observe h 300;
  let s = Obs.Registry.snapshot () in
  match Obs.Snapshot.of_json (Obs.Snapshot.to_json s) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok s' ->
    Alcotest.(check bool) "scalars round-trip" true
      (s.Obs.Snapshot.scalars = s'.Obs.Snapshot.scalars);
    Alcotest.(check bool) "histos round-trip" true
      (s.Obs.Snapshot.histos = s'.Obs.Snapshot.histos);
    Alcotest.(check int) "trace emitted round-trips" s.Obs.Snapshot.trace_emitted
      s'.Obs.Snapshot.trace_emitted;
    Alcotest.(check int) "trace capacity round-trips" s.Obs.Snapshot.trace_capacity
      s'.Obs.Snapshot.trace_capacity

let test_prometheus_export () =
  let c = Obs.Counter.make "test.obs.prom_counter" in
  Obs.Counter.add c 3;
  let h = Obs.Histo.make "test.obs.prom_histo" in
  Obs.Histo.observe h 5;
  let out = Obs.Snapshot.to_prometheus (Obs.Registry.snapshot ()) in
  let has affix = contains ~affix out in
  Alcotest.(check bool) "dots become underscores" true
    (has "# TYPE test_obs_prom_counter counter");
  Alcotest.(check bool) "histogram family" true (has "# TYPE test_obs_prom_histo histogram");
  Alcotest.(check bool) "+Inf bucket present" true
    (has "test_obs_prom_histo_bucket{le=\"+Inf\"}");
  Alcotest.(check bool) "trace totals exported" true (has "rkd_trace_emitted")

(* ---------------- datapath integration ---------------- *)

let test_vm_emits_telemetry () =
  let program =
    Rmt.Program.make ~name:"obs_probe"
      [ Rmt.Insn.Ld_ctxt_k (1, 0); Rmt.Insn.Alu_imm (Rmt.Insn.Add, 1, 1);
        Rmt.Insn.Mov (0, 1); Rmt.Insn.Exit ]
  in
  let control = Rmt.Control.create ~engine:Rmt.Vm.Jit_compiled () in
  let vm =
    match Rmt.Control.install control program with
    | Ok vm -> vm
    | Error e -> Alcotest.failf "install: %s" e
  in
  let ctxt = Rmt.Ctxt.of_list [ (0, 5) ] in
  let hook = Obs.intern "test/vm_probe" in
  let before = Obs.Registry.snapshot () in
  Obs.Trace.set_current_hook hook;
  for _ = 1 to 5 do
    ignore (Rmt.Vm.invoke_result vm ~ctxt ~now:now0)
  done;
  Obs.Trace.set_current_hook (-1);
  let d = Obs.Snapshot.diff ~before ~after:(Obs.Registry.snapshot ()) in
  Alcotest.(check (option int)) "vm invocations counted" (Some 5)
    (Obs.Snapshot.scalar d "rmt.vm.invocations");
  Alcotest.(check (option int)) "jit runs counted" (Some 5)
    (Obs.Snapshot.scalar d "rmt.jit.runs");
  Alcotest.(check int) "one trace event per invocation" 5 d.Obs.Snapshot.trace_emitted;
  (* The installed program's registry views track its accessors. *)
  Alcotest.(check (option int)) "program invocation view" (Some 5)
    (Obs.Snapshot.scalar d "rmt.program.obs_probe.invocations");
  match List.rev (Obs.Trace.last 5) with
  | [] -> Alcotest.fail "no trace events recorded"
  | (e : Obs.Trace.event) :: _ ->
    Alcotest.(check int) "event attributed to ambient hook" hook e.Obs.Trace.hook;
    Alcotest.(check int) "event uid is the loaded program's" (Rmt.Loaded.uid (Rmt.Vm.loaded vm))
      e.Obs.Trace.uid;
    Alcotest.(check int) "event engine is jit" 1 e.Obs.Trace.engine;
    Alcotest.(check int) "event carries the action result" 6 e.Obs.Trace.result;
    Alcotest.(check int) "event steps" 4 e.Obs.Trace.steps

let test_disabled_vm_is_silent () =
  let program = Rmt.Program.make ~name:"obs_quiet" [ Rmt.Insn.Ld_imm (0, 1); Rmt.Insn.Exit ] in
  let control = Rmt.Control.create () in
  let vm = Result.get_ok (Rmt.Control.install control program) in
  let ctxt = Rmt.Ctxt.create () in
  Obs.set_enabled false;
  let before = Obs.Registry.snapshot () in
  for _ = 1 to 10 do
    ignore (Rmt.Vm.invoke_result vm ~ctxt ~now:now0)
  done;
  let d = Obs.Snapshot.diff ~before ~after:(Obs.Registry.snapshot ()) in
  Obs.set_enabled true;
  Alcotest.(check (option int)) "no counter movement when disabled" (Some 0)
    (Obs.Snapshot.scalar d "rmt.vm.invocations");
  Alcotest.(check int) "no trace events when disabled" 0 d.Obs.Snapshot.trace_emitted;
  (* The datapath itself still runs. *)
  Alcotest.(check int) "program still executes" 1 (Rmt.Vm.invoke_result vm ~ctxt ~now:now0)

let suite =
  [ ( "obs",
      [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
        Alcotest.test_case "histo bucketing" `Quick test_histo_bucketing;
        Alcotest.test_case "histo percentiles" `Quick test_histo_observe_and_percentile;
        Alcotest.test_case "zero allocation" `Quick test_zero_alloc_primitives;
        Alcotest.test_case "exact under par fan-out" `Quick test_counter_exact_under_par;
        Alcotest.test_case "trace wrap and drop" `Quick test_trace_wrap_and_drop;
        Alcotest.test_case "trace capacity clamps" `Quick test_trace_capacity_clamps;
        Alcotest.test_case "trace hook attribution" `Quick test_trace_hook_attribution;
        Alcotest.test_case "snapshot diff and views" `Quick test_snapshot_diff_and_views;
        Alcotest.test_case "snapshot sorted, text export" `Quick
          test_snapshot_sorted_and_text;
        Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
        Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
        Alcotest.test_case "vm emits telemetry" `Quick test_vm_emits_telemetry;
        Alcotest.test_case "disabled vm is silent" `Quick test_disabled_vm_is_silent ] ) ]
