(* Domain-pool tests: combinator results against sequential oracles,
   chunking/stealing under skewed task sizes, exception propagation,
   nested batches, shutdown fallback — and the experiment engine's
   determinism contract: domains=1 and domains=4 must produce
   bit-identical tables and ablations. *)

let with_pool domains f =
  let pool = Par.create ~domains () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) (fun () -> f pool)

(* ---------------- combinators vs. sequential oracles ---------------- *)

let prop_parallel_map_matches_seq =
  QCheck2.Test.make ~name:"parallel_map = List.map (order preserved)" ~count:30
    QCheck2.Gen.(pair (int_range 1 5) (list_size (int_range 0 200) (int_range (-1000) 1000)))
    (fun (domains, xs) ->
      let f x = (x * x) - (3 * x) + 7 in
      with_pool domains (fun pool -> Par.parallel_map pool f xs = List.map f xs))

let prop_parallel_map_array_chunked =
  QCheck2.Test.make ~name:"parallel_map_array = Array.map for every chunk size" ~count:30
    QCheck2.Gen.(pair (int_range 1 7) (int_range 0 500))
    (fun (chunk, n) ->
      let arr = Array.init n (fun i -> (i * 13) mod 97) in
      let f x = x + 1 in
      with_pool 4 (fun pool ->
          Par.parallel_map_array ~chunk pool f arr = Array.map f arr))

let test_run_tasks_order () =
  with_pool 4 (fun pool ->
      (* Skewed task costs force stealing; results must stay in order. *)
      let tasks =
        List.init 16 (fun i ->
            fun () ->
              let spin = if i = 0 then 200_000 else 1_000 in
              let acc = ref 0 in
              for k = 1 to spin do
                acc := !acc + (k mod 7)
              done;
              ignore !acc;
              i * 10)
      in
      Alcotest.(check (list int))
        "ordered" (List.init 16 (fun i -> i * 10))
        (Par.run_tasks pool tasks))

let test_empty_and_singleton () =
  with_pool 3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Par.parallel_map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 42 ] (Par.parallel_map pool (fun x -> x + 1) [ 41 ]);
      Alcotest.(check (array int)) "empty array" [||] (Par.parallel_map_array pool (fun x -> x) [||]))

let test_exception_propagation () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "task exception reaches the submitter" (Failure "boom") (fun () ->
          ignore
            (Par.parallel_map pool
               (fun i -> if i = 13 then failwith "boom" else i)
               (List.init 64 Fun.id)));
      (* the pool must survive a failed batch *)
      Alcotest.(check (list int)) "pool still works" [ 2; 4; 6 ]
        (Par.parallel_map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_nested_batches () =
  with_pool 4 (fun pool ->
      (* inner batches run inline on the worker — no deadlock, same result *)
      let sums =
        Par.parallel_map pool
          (fun base -> List.fold_left ( + ) 0 (Par.parallel_map pool (fun i -> base + i) (List.init 10 Fun.id)))
          (List.init 8 (fun b -> 100 * b))
      in
      let expect = List.init 8 (fun b -> (10 * 100 * b) + 45) in
      Alcotest.(check (list int)) "nested sums" expect sums)

let test_sequential_pool_and_shutdown () =
  let pool = Par.create ~domains:1 () in
  Alcotest.(check int) "width 1" 1 (Par.domains pool);
  Alcotest.(check (list int)) "inline" [ 1; 4; 9 ] (Par.parallel_map pool (fun x -> x * x) [ 1; 2; 3 ]);
  Par.shutdown pool;
  let pool4 = Par.create ~domains:4 () in
  Par.shutdown pool4;
  Par.shutdown pool4;
  (* submitting after shutdown degrades to the sequential fallback *)
  Alcotest.(check (list int)) "after shutdown" [ 0; 2; 4 ]
    (Par.parallel_map pool4 (fun x -> 2 * x) [ 0; 1; 2 ])

(* ---------------- determinism contract ---------------- *)

(* Run an experiment at domains=1 and domains=4 on the global pool and
   require structurally (hence bit-) identical rows.  These are the
   fan-outs the macro harness parallelizes; the contract is what lets
   the control plane retrain/re-evaluate on all cores without changing
   any published number. *)
let at_domains n f =
  Par.set_global_domains n;
  let r = f () in
  Par.set_global_domains 1;
  r

let test_determinism_table1 () =
  let seq = at_domains 1 (fun () -> Rkd.Experiment.table1 ()) in
  let par = at_domains 4 (fun () -> Rkd.Experiment.table1 ()) in
  Alcotest.(check bool) "table1 rows bit-identical" true (seq = par);
  Alcotest.(check int) "row count" 6 (List.length par)

let test_determinism_table2_fib () =
  let seq = at_domains 1 (fun () -> Rkd.Experiment.table2_benchmark ~seed:42 "fib") in
  let par = at_domains 4 (fun () -> Rkd.Experiment.table2_benchmark ~seed:42 "fib") in
  Alcotest.(check bool) "table2 fib rows bit-identical" true (seq = par);
  Alcotest.(check int) "row count" 3 (List.length par)

let test_determinism_ablation_window () =
  let seq = at_domains 1 (fun () -> Rkd.Experiment.ablation_window ()) in
  let par = at_domains 4 (fun () -> Rkd.Experiment.ablation_window ()) in
  Alcotest.(check bool) "window ablation bit-identical" true (seq = par);
  Alcotest.(check int) "row count" 6 (List.length par)

let test_determinism_ablation_model_family () =
  let seq = at_domains 1 (fun () -> Rkd.Experiment.ablation_model_family ()) in
  let par = at_domains 4 (fun () -> Rkd.Experiment.ablation_model_family ()) in
  Alcotest.(check bool) "model-family ablation bit-identical" true (seq = par);
  Alcotest.(check int) "row count" 4 (List.length par)

let suite =
  [ ( "par",
      [ QCheck_alcotest.to_alcotest prop_parallel_map_matches_seq;
        QCheck_alcotest.to_alcotest prop_parallel_map_array_chunked;
        Alcotest.test_case "run_tasks order under stealing" `Quick test_run_tasks_order;
        Alcotest.test_case "empty and singleton batches" `Quick test_empty_and_singleton;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "nested batches" `Quick test_nested_batches;
        Alcotest.test_case "sequential pool and shutdown" `Quick
          test_sequential_pool_and_shutdown ] );
    ( "par-determinism",
      [ Alcotest.test_case "table1: domains 1 = 4" `Quick test_determinism_table1;
        Alcotest.test_case "table2 fib: domains 1 = 4" `Quick test_determinism_table2_fib;
        Alcotest.test_case "ablation window: domains 1 = 4" `Quick
          test_determinism_ablation_window;
        Alcotest.test_case "ablation model-family: domains 1 = 4" `Quick
          test_determinism_ablation_model_family ] ) ]
