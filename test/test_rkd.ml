(* Tests for the paper's glue layer: the RMT prefetcher (case study 1), the
   scheduler hook (case study 2), the adaptation monitor and the experiment
   harness plumbing. *)

(* ---------------- Prefetch_rmt ---------------- *)

let small_params =
  { Rkd.Prefetch_rmt.default_params with
    window_capacity = 1024;
    retrain_period = 128 }

let test_prefetch_programs_verify () =
  (* Both case-study programs must pass the verifier with the standard
     helper set and a bound tree model — exercised via create. *)
  let t = Rkd.Prefetch_rmt.create ~params:small_params () in
  let control = Rkd.Prefetch_rmt.control t in
  Alcotest.(check (list string)) "programs installed" [ "pf_collect"; "pf_predict" ]
    (Rmt.Control.program_names control);
  Alcotest.(check (list string)) "tables registered"
    [ "page_access_tab"; "page_prefetch_tab" ] (Rmt.Control.table_names control)

let test_prefetch_learns_stride () =
  let t = Rkd.Prefetch_rmt.create ~params:small_params () in
  let prefetcher = Rkd.Prefetch_rmt.prefetcher t in
  let trace = Ksim.Workload_mem.strided ~pid:1 ~start:0 ~stride:5 ~n:3000 in
  let r = Ksim.Mem_sim.run ~prefetcher trace in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f > 0.8 on pure stride" r.Ksim.Mem_sim.coverage)
    true (r.Ksim.Mem_sim.coverage > 0.8);
  let stats = Rkd.Prefetch_rmt.stats t in
  Alcotest.(check bool) "retrained" true (stats.Rkd.Prefetch_rmt.retrains > 0);
  Alcotest.(check bool) "model invoked" true (stats.Rkd.Prefetch_rmt.model_invocations > 0);
  Alcotest.(check bool) "vm executed bytecode" true (stats.Rkd.Prefetch_rmt.vm_steps > 0)

let test_prefetch_beats_baselines_on_conv () =
  let config = Rkd.Experiment.mem_config in
  let trace = Ksim.Workload_mem.matrix_conv ~pid:1 () in
  let ours = Rkd.Prefetch_rmt.create () in
  let r_ours =
    Ksim.Mem_sim.run ~config ~prefetcher:(Rkd.Prefetch_rmt.prefetcher ours) trace
  in
  let r_leap = Ksim.Mem_sim.run ~config ~prefetcher:(Ksim.Leap.create ()) trace in
  let r_linux = Ksim.Mem_sim.run ~config ~prefetcher:(Ksim.Readahead.create ()) trace in
  Alcotest.(check bool) "beats leap coverage" true
    (r_ours.Ksim.Mem_sim.coverage > r_leap.Ksim.Mem_sim.coverage);
  Alcotest.(check bool) "beats linux coverage" true
    (r_ours.Ksim.Mem_sim.coverage > r_linux.Ksim.Mem_sim.coverage);
  Alcotest.(check bool) "beats both on completion" true
    (r_ours.Ksim.Mem_sim.completion_ns < r_leap.Ksim.Mem_sim.completion_ns
     && r_ours.Ksim.Mem_sim.completion_ns < r_linux.Ksim.Mem_sim.completion_ns)

let test_prefetch_reset_is_complete () =
  let t = Rkd.Prefetch_rmt.create ~params:small_params () in
  let prefetcher = Rkd.Prefetch_rmt.prefetcher t in
  let trace = Ksim.Workload_mem.strided ~pid:1 ~start:0 ~stride:3 ~n:2000 in
  let r1 = Ksim.Mem_sim.run ~prefetcher trace in
  let r2 = Ksim.Mem_sim.run ~prefetcher trace in
  Alcotest.(check int) "same faults after reset" r1.Ksim.Mem_sim.faults r2.Ksim.Mem_sim.faults;
  Alcotest.(check (float 0.0001)) "same accuracy after reset" r1.Ksim.Mem_sim.accuracy
    r2.Ksim.Mem_sim.accuracy

let test_prefetch_interp_jit_agree () =
  let run engine =
    let t = Rkd.Prefetch_rmt.create ~params:small_params ~engine () in
    let trace = Ksim.Workload_mem.strided ~pid:1 ~start:0 ~stride:7 ~n:1500 in
    let r = Ksim.Mem_sim.run ~prefetcher:(Rkd.Prefetch_rmt.prefetcher t) trace in
    (r.Ksim.Mem_sim.faults, r.Ksim.Mem_sim.prefetches_issued, r.Ksim.Mem_sim.prefetches_used)
  in
  Alcotest.(check bool) "engines agree end-to-end" true
    (run Rmt.Vm.Interpreted = run Rmt.Vm.Jit_compiled)

let test_prefetch_per_pid_entries () =
  let t = Rkd.Prefetch_rmt.create ~params:small_params () in
  let prefetcher = Rkd.Prefetch_rmt.prefetcher t in
  (* two interleaved processes *)
  let trace =
    List.concat_map
      (fun i ->
        [ { Ksim.Mem_sim.pid = 1; page = i * 2 };
          { Ksim.Mem_sim.pid = 2; page = 1_000_000 + (i * 3) } ])
      (List.init 800 Fun.id)
  in
  ignore (Ksim.Mem_sim.run ~prefetcher trace);
  let control = Rkd.Prefetch_rmt.control t in
  let table = Option.get (Rmt.Control.find_table control "page_access_tab") in
  Alcotest.(check int) "one entry per process" 2 (Rmt.Table.entry_count table)

(* ---------------- Sched_rmt ---------------- *)

let linear_model weights threshold =
  Rmt.Model_store.Fn
    { n_features = Array.length weights;
      cost = Kml.Model_cost.zero;
      f =
        (fun features ->
          let score = ref 0 in
          Array.iteri (fun i w -> score := !score + (w * features.(i))) weights;
          if !score > threshold then 1 else 0) }

let test_sched_rmt_decider () =
  let weights = Array.make 15 0 in
  weights.(4) <- 1 (* imbalance *);
  let t = Rkd.Sched_rmt.create ~model:(linear_model weights 2000) () in
  let d = Rkd.Sched_rmt.decider t in
  let features = Array.make 15 0 in
  features.(4) <- 3000;
  Alcotest.(check bool) "migrate on big imbalance" true (d ~features ~heuristic:false);
  features.(4) <- 100;
  Alcotest.(check bool) "stay on small imbalance" false (d ~features ~heuristic:true);
  let stats = Rkd.Sched_rmt.stats t in
  Alcotest.(check int) "decisions" 2 stats.Rkd.Sched_rmt.decisions;
  Alcotest.(check bool) "full reads all features" true
    (stats.Rkd.Sched_rmt.reads_per_decision >= 15.0)

let test_sched_rmt_lean_reads_less () =
  let full = Rkd.Sched_rmt.create ~model:(linear_model (Array.make 15 1) 10) () in
  let lean = Rkd.Sched_rmt.create ~keep:[| 4; 6 |] ~model:(linear_model [| 1; 1 |] 10) () in
  let features = Array.init 15 (fun i -> i) in
  for _ = 1 to 10 do
    ignore (Rkd.Sched_rmt.decider full ~features ~heuristic:false);
    ignore (Rkd.Sched_rmt.decider lean ~features ~heuristic:false)
  done;
  let sf = Rkd.Sched_rmt.stats full and sl = Rkd.Sched_rmt.stats lean in
  Alcotest.(check bool)
    (Printf.sprintf "lean reads fewer monitor words (%.1f vs %.1f)"
       sl.Rkd.Sched_rmt.reads_per_decision sf.Rkd.Sched_rmt.reads_per_decision)
    true
    (sl.Rkd.Sched_rmt.reads_per_decision < sf.Rkd.Sched_rmt.reads_per_decision /. 3.0)

let test_sched_rmt_arity_check () =
  Alcotest.check_raises "model/keep mismatch"
    (Invalid_argument "Sched_rmt.create: model arity must match the kept feature count")
    (fun () ->
      ignore (Rkd.Sched_rmt.create ~keep:[| 0; 1 |] ~model:(linear_model (Array.make 15 1) 0) ()))

let test_sched_rmt_drives_simulation () =
  let t = Rkd.Sched_rmt.create ~model:(linear_model (Array.make 15 0) (-1)) () in
  (* constant-migrate model: score 0 > -1 -> always class 1 *)
  let r =
    Ksim.Sched_sim.run ~workload:"matmul" ~decider_name:"rmt" (Rkd.Sched_rmt.decider t)
  in
  Alcotest.(check bool) "simulation completes" true (r.Ksim.Sched_sim.jct_ns > 0);
  let stats = Rkd.Sched_rmt.stats t in
  Alcotest.(check int) "every decision through the vm" r.Ksim.Sched_sim.decisions
    stats.Rkd.Sched_rmt.decisions

(* ---------------- Adapt ---------------- *)

let test_adapt_transitions () =
  let degraded = ref 0 and recovered = ref 0 in
  let m =
    Rkd.Adapt.create ~low:0.4 ~high:0.7 ~window:10
      ~on_degrade:(fun () -> incr degraded)
      ~on_recover:(fun () -> incr recovered)
      ()
  in
  Alcotest.(check bool) "starts normal" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  for _ = 1 to 10 do
    Rkd.Adapt.observe m ~correct:false
  done;
  Alcotest.(check bool) "degraded" true (Rkd.Adapt.mode m = Rkd.Adapt.Conservative);
  Alcotest.(check int) "degrade fired" 1 !degraded;
  for _ = 1 to 10 do
    Rkd.Adapt.observe m ~correct:true
  done;
  Alcotest.(check bool) "recovered" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  Alcotest.(check int) "recover fired" 1 !recovered;
  Alcotest.(check int) "transitions" 2 (Rkd.Adapt.transitions m)

let test_adapt_hysteresis () =
  let m = Rkd.Adapt.create ~low:0.3 ~high:0.8 ~window:10 () in
  (* 50% accuracy: neither threshold crossed from Normal *)
  for i = 1 to 20 do
    Rkd.Adapt.observe m ~correct:(i mod 2 = 0)
  done;
  Alcotest.(check bool) "stays normal in the band" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  Alcotest.(check int) "no transitions" 0 (Rkd.Adapt.transitions m)

let test_adapt_zero_observations () =
  let m = Rkd.Adapt.create ~low:0.4 ~high:0.7 ~window:10 () in
  Alcotest.(check int) "no observations yet" 0 (Rkd.Adapt.observations m);
  (* Before the first full window the reported rate is the optimistic
     prior, and no transition can have fired. *)
  Alcotest.(check (float 0.0)) "rate defaults to 1.0" 1.0 (Rkd.Adapt.rate m);
  Alcotest.(check bool) "mode normal" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  Alcotest.(check int) "no transitions" 0 (Rkd.Adapt.transitions m)

let test_adapt_boundary_rates () =
  (* The hysteresis comparisons are strict: a window landing exactly on a
     threshold must not cross it in either direction. *)
  let feed m ~correct ~wrong =
    for _ = 1 to correct do
      Rkd.Adapt.observe m ~correct:true
    done;
    for _ = 1 to wrong do
      Rkd.Adapt.observe m ~correct:false
    done
  in
  let m = Rkd.Adapt.create ~low:0.5 ~high:0.75 ~window:4 () in
  feed m ~correct:2 ~wrong:2 (* rate = low exactly *);
  Alcotest.(check bool) "rate == low stays normal" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  feed m ~correct:1 ~wrong:3 (* rate strictly below low *);
  Alcotest.(check bool) "rate < low degrades" true
    (Rkd.Adapt.mode m = Rkd.Adapt.Conservative);
  feed m ~correct:3 ~wrong:1 (* rate = high exactly *);
  Alcotest.(check bool) "rate == high stays conservative" true
    (Rkd.Adapt.mode m = Rkd.Adapt.Conservative);
  feed m ~correct:4 ~wrong:0 (* rate strictly above high *);
  Alcotest.(check bool) "rate > high recovers" true (Rkd.Adapt.mode m = Rkd.Adapt.Normal);
  Alcotest.(check int) "exactly two transitions" 2 (Rkd.Adapt.transitions m);
  (* Degenerate thresholds: low = high = 0 can never degrade (rate >= 0
     is never strictly below 0); low = high = 1 can never recover once
     degraded... but also can never degrade from a perfect window. *)
  let never = Rkd.Adapt.create ~low:0.0 ~high:0.0 ~window:2 () in
  feed never ~correct:0 ~wrong:4;
  Alcotest.(check bool) "rate 0 not < low 0" true (Rkd.Adapt.mode never = Rkd.Adapt.Normal);
  let pinned = Rkd.Adapt.create ~low:1.0 ~high:1.0 ~window:2 () in
  feed pinned ~correct:0 ~wrong:2;
  Alcotest.(check bool) "degrades below low 1.0" true
    (Rkd.Adapt.mode pinned = Rkd.Adapt.Conservative);
  feed pinned ~correct:2 ~wrong:0;
  Alcotest.(check bool) "perfect window not > high 1.0" true
    (Rkd.Adapt.mode pinned = Rkd.Adapt.Conservative)

let test_adapt_validation () =
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Adapt.create: need 0 <= low <= high <= 1") (fun () ->
      ignore (Rkd.Adapt.create ~low:0.9 ~high:0.2 ()))

(* ---------------- Experiment / Report plumbing ---------------- *)

let test_privacy_ablation_shape () =
  let rows = Rkd.Experiment.ablation_privacy () in
  Alcotest.(check int) "five budgets" 5 (List.length rows);
  (* Per-query noise decreases as per-query epsilon grows; the fixed total
     budget answers fewer of the more precise queries. *)
  let noises = List.map (fun r -> r.Rkd.Experiment.mean_abs_noise) rows in
  let first = List.hd noises and last = List.nth noises (List.length noises - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "noise shrinks with per-query epsilon (%.2f -> %.2f)" first last)
    true (first > last);
  let r_precise = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "precise queries exhaust the budget" true
    (r_precise.Rkd.Experiment.queries_denied > 0);
  let r_cheap = List.hd rows in
  Alcotest.(check bool) "cheap queries all answered" true
    (r_cheap.Rkd.Experiment.queries_denied = 0)

let test_vm_overhead_shape () =
  let rows = Rkd.Experiment.vm_overhead ~iterations:2_000 () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  let find engine program =
    List.find
      (fun (r : Rkd.Experiment.overhead_row) -> r.engine = engine && r.program = program)
      rows
  in
  let i = find "interpreted" "pf_collect" and j = find "jit" "pf_collect" in
  Alcotest.(check bool) "same step counts across engines" true
    (Float.abs (i.Rkd.Experiment.steps_per_invocation -. j.Rkd.Experiment.steps_per_invocation)
     < 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "jit not slower (%.0f vs %.0f ns)" j.Rkd.Experiment.ns_per_invocation
       i.Rkd.Experiment.ns_per_invocation)
    true
    (j.Rkd.Experiment.ns_per_invocation
     < i.Rkd.Experiment.ns_per_invocation *. 1.1)

let test_report_paper_tables_complete () =
  Alcotest.(check int) "table1 reference rows" 6 (List.length Rkd.Report.paper_table1);
  Alcotest.(check int) "table2 reference rows" 12 (List.length Rkd.Report.paper_table2)

let suite =
  [ ( "prefetch_rmt",
      [ Alcotest.test_case "programs verify and install" `Quick test_prefetch_programs_verify;
        Alcotest.test_case "learns stride online" `Quick test_prefetch_learns_stride;
        Alcotest.test_case "beats baselines on conv" `Slow test_prefetch_beats_baselines_on_conv;
        Alcotest.test_case "reset is complete" `Quick test_prefetch_reset_is_complete;
        Alcotest.test_case "interp/jit agree end-to-end" `Slow test_prefetch_interp_jit_agree;
        Alcotest.test_case "per-pid entries" `Quick test_prefetch_per_pid_entries ] );
    ( "sched_rmt",
      [ Alcotest.test_case "decider" `Quick test_sched_rmt_decider;
        Alcotest.test_case "lean reads less" `Quick test_sched_rmt_lean_reads_less;
        Alcotest.test_case "arity check" `Quick test_sched_rmt_arity_check;
        Alcotest.test_case "drives simulation" `Quick test_sched_rmt_drives_simulation ] );
    ( "adapt",
      [ Alcotest.test_case "transitions" `Quick test_adapt_transitions;
        Alcotest.test_case "hysteresis" `Quick test_adapt_hysteresis;
        Alcotest.test_case "zero observations" `Quick test_adapt_zero_observations;
        Alcotest.test_case "boundary rates" `Quick test_adapt_boundary_rates;
        Alcotest.test_case "validation" `Quick test_adapt_validation ] );
    ( "experiment",
      [ Alcotest.test_case "privacy ablation shape" `Quick test_privacy_ablation_shape;
        Alcotest.test_case "vm overhead shape" `Slow test_vm_overhead_shape;
        Alcotest.test_case "paper tables complete" `Quick test_report_paper_tables_complete ] ) ]
