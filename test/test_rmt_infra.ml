(* Tests for the RMT infrastructure around the VM: match/action tables,
   pipelines, the control plane, and the safety components (privacy, rate
   limiting, guardrails, model store). *)

let now0 () = 0

(* ---------------- Table ---------------- *)

let test_table_exact_match () =
  let t =
    Rmt.Table.create ~name:"t" ~match_keys:[| 0 |] ~default:(Rmt.Table.Const (-1))
  in
  let _e1 = Rmt.Table.insert t ~patterns:[| Rmt.Table.Eq 5 |] (Rmt.Table.Const 50) in
  let _e2 = Rmt.Table.insert t ~patterns:[| Rmt.Table.Eq 7 |] (Rmt.Table.Const 70) in
  let look v = Rmt.Table.lookup t ~ctxt:(Rmt.Ctxt.of_list [ (0, v) ]) ~now:now0 in
  Alcotest.(check int) "pid 5" 50 (look 5);
  Alcotest.(check int) "pid 7" 70 (look 7);
  Alcotest.(check int) "default" (-1) (look 9);
  Alcotest.(check int) "hits" 3 (Rmt.Table.hits t);
  Alcotest.(check int) "default hits" 1 (Rmt.Table.default_hits t)

let test_table_priority_and_patterns () =
  let t =
    Rmt.Table.create ~name:"t" ~match_keys:[| 0; 1 |] ~default:(Rmt.Table.Const 0)
  in
  let open Rmt.Table in
  let _lo = insert t ~priority:1 ~patterns:[| Any; Any |] (Const 1) in
  let _hi =
    insert t ~priority:5 ~patterns:[| Between (10, 20); Any |] (Const 2)
  in
  let _mask =
    insert t ~priority:9
      ~patterns:[| Mask { value = 0b100; mask = 0b100 }; Eq 3 |]
      (Const 3)
  in
  let look a b = lookup t ~ctxt:(Rmt.Ctxt.of_list [ (0, a); (1, b) ]) ~now:now0 in
  Alcotest.(check int) "mask+eq wins (highest priority)" 3 (look 0b1100 3);
  Alcotest.(check int) "range wins over wildcard" 2 (look 15 99);
  Alcotest.(check int) "wildcard" 1 (look 1 1)

let test_table_runtime_updates () =
  let t = Rmt.Table.create ~name:"t" ~match_keys:[| 0 |] ~default:(Rmt.Table.Const 0) in
  let e = Rmt.Table.insert t ~patterns:[| Rmt.Table.Eq 1 |] (Rmt.Table.Const 10) in
  let look () = Rmt.Table.lookup t ~ctxt:(Rmt.Ctxt.of_list [ (0, 1) ]) ~now:now0 in
  Alcotest.(check int) "initial action" 10 (look ());
  Alcotest.(check bool) "set_action" true (Rmt.Table.set_action t e (Rmt.Table.Const 20));
  Alcotest.(check int) "updated action" 20 (look ());
  Alcotest.(check int) "entry hits" 2 (Rmt.Table.entry_hits t e);
  Alcotest.(check bool) "remove" true (Rmt.Table.remove t e);
  Alcotest.(check int) "fell to default" 0 (look ());
  Alcotest.(check bool) "double remove" false (Rmt.Table.remove t e)

let test_table_insertion_order_breaks_ties () =
  let t = Rmt.Table.create ~name:"t" ~match_keys:[| 0 |] ~default:(Rmt.Table.Const 0) in
  let _a = Rmt.Table.insert t ~patterns:[| Rmt.Table.Any |] (Rmt.Table.Const 1) in
  let _b = Rmt.Table.insert t ~patterns:[| Rmt.Table.Any |] (Rmt.Table.Const 2) in
  Alcotest.(check int) "first inserted wins" 1
    (Rmt.Table.lookup t ~ctxt:(Rmt.Ctxt.create ()) ~now:now0)

let test_table_arity_check () =
  let t = Rmt.Table.create ~name:"t" ~match_keys:[| 0; 1 |] ~default:(Rmt.Table.Const 0) in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.insert: pattern arity must match the table's match keys")
    (fun () -> ignore (Rmt.Table.insert t ~patterns:[| Rmt.Table.Any |] (Rmt.Table.Const 0)))

let prop_pattern_matches =
  QCheck2.Test.make ~name:"pattern semantics" ~count:300
    QCheck2.Gen.(pair (int_range (-100) 100) (int_range (-100) 100))
    (fun (v, x) ->
      let open Rmt.Table in
      pattern_matches Any v
      && pattern_matches (Eq v) v
      && pattern_matches (Eq x) v = (v = x)
      && pattern_matches (Between (Stdlib.min v x, Stdlib.max v x)) v
      && pattern_matches (Mask { value = v; mask = 0 }) x)

(* ---------------- Pipeline ---------------- *)

let test_pipeline_fire_order () =
  let p = Rmt.Pipeline.create () in
  let mk name v =
    Rmt.Table.create ~name ~match_keys:[||] ~default:(Rmt.Table.Const v)
  in
  Rmt.Pipeline.attach p ~hook:"h" (mk "a" 1);
  Rmt.Pipeline.attach p ~hook:"h" (mk "b" 2);
  let ctxt = Rmt.Ctxt.create () in
  Alcotest.(check (list int)) "all results in order" [ 1; 2 ]
    (Rmt.Pipeline.fire_all p ~hook:"h" ~ctxt ~now:now0);
  Alcotest.(check (option int)) "last wins" (Some 2)
    (Rmt.Pipeline.fire p ~hook:"h" ~ctxt ~now:now0);
  Alcotest.(check (option int)) "missing hook" None
    (Rmt.Pipeline.fire p ~hook:"nope" ~ctxt ~now:now0);
  Alcotest.(check int) "firings" 2 (Rmt.Pipeline.firings p ~hook:"h");
  Alcotest.(check bool) "detach" true (Rmt.Pipeline.detach p ~hook:"h" ~name:"b");
  Alcotest.(check (option int)) "after detach" (Some 1)
    (Rmt.Pipeline.fire p ~hook:"h" ~ctxt ~now:now0)

(* ---------------- Control plane ---------------- *)

let test_control_install_and_update_model () =
  let control = Rmt.Control.create () in
  let constant v =
    Rmt.Model_store.Fn { n_features = 1; cost = Kml.Model_cost.zero; f = (fun _ -> v) }
  in
  let (_ : Rmt.Model_store.handle) = Rmt.Control.register_model control ~name:"m" (constant 1) in
  let program =
    Rmt.Program.make ~name:"p" ~vmem_size:2 ~model_arity:[ 1 ]
      [ Rmt.Insn.Vec_ld_ctxt (0, 0, 1); Rmt.Insn.Call_ml (0, 0, 1); Rmt.Insn.Exit ]
  in
  let vm = Result.get_ok (Rmt.Control.install control ~model_names:[ "m" ] program) in
  let run () = (Rmt.Vm.invoke vm ~ctxt:(Rmt.Ctxt.create ()) ~now:now0).Rmt.Interp.result in
  Alcotest.(check int) "initial model" 1 (run ());
  (* Hot-swap the model; no reinstall needed. *)
  (match Rmt.Control.update_model control ~name:"m" (constant 2) with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check int) "updated model" 2 (run ());
  (match Rmt.Control.update_model control ~name:"nope" (constant 3) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "unknown model must fail");
  Alcotest.(check (list string)) "program names" [ "p" ] (Rmt.Control.program_names control)

let test_control_rejects_unverifiable () =
  let control = Rmt.Control.create () in
  match Rmt.Control.install control (Rmt.Program.make ~name:"bad" [ Rmt.Insn.Exit ]) with
  | Error msg ->
    Alcotest.(check bool) "mentions verifier" true
      (String.length msg > 0 && String.sub msg 0 8 = "verifier")
  | Ok _ -> Alcotest.fail "expected verifier rejection"

let test_control_install_asm () =
  let control = Rmt.Control.create () in
  match Rmt.Control.install_asm control "  ldimm r0, 9\n  exit\n" with
  | Ok vm ->
    Alcotest.(check int) "runs" 9
      (Rmt.Vm.invoke vm ~ctxt:(Rmt.Ctxt.create ()) ~now:now0).Rmt.Interp.result
  | Error e -> Alcotest.fail e

let test_control_model_cost_budget () =
  let control = Rmt.Control.create () in
  let expensive =
    Rmt.Model_store.Fn
      { n_features = 1;
        cost = { Kml.Model_cost.macs = 1_000_000; comparisons = 1; memory_words = 1 };
        f = (fun _ -> 0) }
  in
  let (_ : Rmt.Model_store.handle) =
    Rmt.Control.register_model control ~name:"big" expensive
  in
  let program =
    Rmt.Program.make ~name:"p" ~vmem_size:2 ~model_arity:[ 1 ]
      [ Rmt.Insn.Vec_ld_ctxt (0, 0, 1); Rmt.Insn.Call_ml (0, 0, 1); Rmt.Insn.Exit ]
  in
  match Rmt.Control.install control ~model_names:[ "big" ] program with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "model over budget must be rejected"

(* ---------------- Privacy ---------------- *)

let test_privacy_budget_accounting () =
  let acct = Rmt.Privacy.create ~epsilon_milli:250 in
  (match Rmt.Privacy.charge acct ~cost_milli:100 with
   | Rmt.Privacy.Granted { epsilon_milli } -> Alcotest.(check int) "granted" 100 epsilon_milli
   | Rmt.Privacy.Denied -> Alcotest.fail "should grant");
  ignore (Rmt.Privacy.charge acct ~cost_milli:100);
  (match Rmt.Privacy.charge acct ~cost_milli:100 with
   | Rmt.Privacy.Denied -> ()
   | Rmt.Privacy.Granted _ -> Alcotest.fail "budget exhausted");
  Alcotest.(check int) "remaining" 50 (Rmt.Privacy.remaining_milli acct);
  Alcotest.(check int) "denials" 1 (Rmt.Privacy.denials acct)

let test_privacy_noise_scale () =
  let rng = Kml.Rng.create 3 in
  let mean_abs epsilon_milli =
    let n = 3000 in
    let total = ref 0 in
    for _ = 1 to n do
      total := !total + abs (Rmt.Privacy.noise ~rng ~epsilon_milli ~sensitivity:1)
    done;
    float_of_int !total /. float_of_int n
  in
  let tight = mean_abs 5_000 and loose = mean_abs 200 in
  Alcotest.(check bool)
    (Printf.sprintf "smaller epsilon -> more noise (%.2f vs %.2f)" loose tight)
    true (loose > 2.0 *. tight)

let test_privacy_end_to_end_denial () =
  (* Program with a 300-milli-eps budget calling a 100-milli-eps helper:
     exactly three queries answered, later ones denied (result 0). *)
  let control = Rmt.Control.create () in
  let program =
    Rmt.Program.make ~name:"agg"
      ~capabilities:[ Rmt.Program.Privacy_budget { epsilon_milli = 300 } ]
      [ Rmt.Insn.Ld_imm (1, 0);
        Rmt.Insn.Ld_imm (2, 4);
        Rmt.Insn.Call Rmt.Helper.ctxt_sum_range;
        Rmt.Insn.Exit ]
  in
  let vm = Result.get_ok (Rmt.Control.install control program) in
  let ctxt = Rmt.Ctxt.of_list [ (0, 10); (1, 10); (2, 10); (3, 10) ] in
  let denied = ref 0 in
  for _ = 1 to 5 do
    let outcome = Rmt.Vm.invoke vm ~ctxt ~now:now0 in
    denied := !denied + outcome.Rmt.Interp.privacy_denied
  done;
  Alcotest.(check int) "two of five denied" 2 !denied

(* ---------------- Rate limit / guardrail ---------------- *)

let test_rate_limit_grants () =
  let bucket = Rmt.Rate_limit.create ~tokens_per_sec:10 ~burst:5 ~now:0 in
  Alcotest.(check int) "burst" 5 (Rmt.Rate_limit.grant bucket ~now:0 ~request:8);
  Alcotest.(check int) "empty" 0 (Rmt.Rate_limit.grant bucket ~now:0 ~request:1);
  (* 0.5 s -> 5 tokens refilled *)
  Alcotest.(check int) "refill" 5 (Rmt.Rate_limit.grant bucket ~now:500_000_000 ~request:9);
  Alcotest.(check int) "throttled total" 8 (Rmt.Rate_limit.throttled bucket);
  (* refill caps at burst *)
  Alcotest.(check int) "cap at burst" 5 (Rmt.Rate_limit.available bucket ~now:10_000_000_000)

let test_rate_limit_in_vm () =
  let control = Rmt.Control.create () in
  let clock = ref 0 in
  Rmt.Control.set_clock control (fun () -> !clock);
  let program =
    Rmt.Program.make ~name:"asker"
      ~capabilities:[ Rmt.Program.Rate_limited { tokens_per_sec = 10; burst = 4 } ]
      [ Rmt.Insn.Ld_imm (0, 100); Rmt.Insn.Exit ]
  in
  let vm = Result.get_ok (Rmt.Control.install control program) in
  let ctxt = Rmt.Ctxt.create () in
  let r1 = (Rmt.Vm.invoke vm ~ctxt ~now:(fun () -> !clock)).Rmt.Interp.result in
  Alcotest.(check int) "burst grant" 4 r1;
  let r2 = (Rmt.Vm.invoke vm ~ctxt ~now:(fun () -> !clock)).Rmt.Interp.result in
  Alcotest.(check int) "exhausted" 0 r2;
  clock := 1_000_000_000;
  let r3 = (Rmt.Vm.invoke vm ~ctxt ~now:(fun () -> !clock)).Rmt.Interp.result in
  Alcotest.(check int) "refilled to burst" 4 r3

let test_guardrail () =
  let g = Rmt.Guardrail.create ~lo:0 ~hi:10 in
  Alcotest.(check int) "in range" 5 (Rmt.Guardrail.apply g 5);
  Alcotest.(check int) "clamp hi" 10 (Rmt.Guardrail.apply g 99);
  Alcotest.(check int) "clamp lo" 0 (Rmt.Guardrail.apply g (-3));
  Alcotest.(check int) "violations" 2 (Rmt.Guardrail.violations g)

let test_guardrail_extremes () =
  (* Zero-width band: everything outside the single admitted value clamps. *)
  let g = Rmt.Guardrail.create ~lo:7 ~hi:7 in
  Alcotest.(check int) "min_int clamps up" 7 (Rmt.Guardrail.apply g min_int);
  Alcotest.(check int) "max_int clamps down" 7 (Rmt.Guardrail.apply g max_int);
  Alcotest.(check int) "exact value passes" 7 (Rmt.Guardrail.apply g 7);
  Alcotest.(check int) "two violations" 2 (Rmt.Guardrail.violations g);
  (* Full-width band: nothing clamps, including the extremes themselves. *)
  let all = Rmt.Guardrail.create ~lo:min_int ~hi:max_int in
  Alcotest.(check int) "min_int passes" min_int (Rmt.Guardrail.apply all min_int);
  Alcotest.(check int) "max_int passes" max_int (Rmt.Guardrail.apply all max_int);
  Alcotest.(check int) "no violations" 0 (Rmt.Guardrail.violations all);
  (* Bands touching one extreme clamp toward it without wrapping. *)
  let neg = Rmt.Guardrail.create ~lo:min_int ~hi:(-1) in
  Alcotest.(check int) "clamps into negative band" (-1) (Rmt.Guardrail.apply neg max_int);
  Alcotest.check_raises "inverted band rejected"
    (Invalid_argument "Guardrail.create: lo > hi") (fun () ->
      ignore (Rmt.Guardrail.create ~lo:1 ~hi:0))

let test_rate_limit_extremes () =
  (* A clock that spans the whole int range: [now - last_refill] would
     wrap negative; the refill must saturate, not stall or go negative. *)
  let bucket = Rmt.Rate_limit.create ~tokens_per_sec:1 ~burst:5 ~now:min_int in
  ignore (Rmt.Rate_limit.grant bucket ~now:min_int ~request:5);
  let g = Rmt.Rate_limit.grant bucket ~now:max_int ~request:3 in
  Alcotest.(check int) "wrapping clock still refills to burst" 3 g;
  (* max_int burst: the internal nanosecond scaling must saturate instead
     of overflowing into a negative token count. *)
  let big = Rmt.Rate_limit.create ~tokens_per_sec:max_int ~burst:max_int ~now:0 in
  let got = Rmt.Rate_limit.grant big ~now:1 ~request:max_int in
  Alcotest.(check bool) "saturated grant is non-negative" true (got >= 0);
  Alcotest.(check bool) "saturated grant is bounded" true (got <= max_int);
  Alcotest.(check bool) "available never negative" true
    (Rmt.Rate_limit.available big ~now:2 >= 0);
  (* max_int requests against a small bucket: throttled accounting
     saturates rather than wrapping negative. *)
  let small = Rmt.Rate_limit.create ~tokens_per_sec:1 ~burst:1 ~now:0 in
  ignore (Rmt.Rate_limit.grant small ~now:0 ~request:max_int);
  ignore (Rmt.Rate_limit.grant small ~now:0 ~request:max_int);
  Alcotest.(check int) "throttled saturates at max_int" max_int
    (Rmt.Rate_limit.throttled small);
  (* Negative requests are treated as zero, not as a refund. *)
  let refund = Rmt.Rate_limit.create ~tokens_per_sec:10 ~burst:2 ~now:0 in
  Alcotest.(check int) "negative request grants zero" 0
    (Rmt.Rate_limit.grant refund ~now:0 ~request:min_int);
  Alcotest.(check int) "bucket unchanged by negative request" 2
    (Rmt.Rate_limit.available refund ~now:0);
  (* A clock that runs backwards must not refill. *)
  let back = Rmt.Rate_limit.create ~tokens_per_sec:1_000_000_000 ~burst:4 ~now:1_000 in
  Alcotest.(check int) "drain at creation time" 4
    (Rmt.Rate_limit.grant back ~now:1_000 ~request:4);
  Alcotest.(check int) "no refill on backwards clock" 0
    (Rmt.Rate_limit.grant back ~now:0 ~request:1)

(* ---------------- Model store ---------------- *)

let test_model_store () =
  let store = Rmt.Model_store.create () in
  let constant v =
    Rmt.Model_store.Fn { n_features = 2; cost = Kml.Model_cost.zero; f = (fun _ -> v) }
  in
  let h = Rmt.Model_store.register store ~name:"a" (constant 1) in
  Alcotest.(check int) "predict" 1 (Rmt.Model_store.predict store h [| 0; 0 |]);
  Alcotest.(check int) "invocations" 1 (Rmt.Model_store.invocations store h);
  Rmt.Model_store.replace store h (constant 2);
  Alcotest.(check int) "replaced" 2 (Rmt.Model_store.predict store h [| 0; 0 |]);
  Alcotest.check_raises "arity change rejected"
    (Invalid_argument "Model_store.replace: feature arity mismatch") (fun () ->
      Rmt.Model_store.replace store h
        (Rmt.Model_store.Fn { n_features = 3; cost = Kml.Model_cost.zero; f = (fun _ -> 0) }));
  Alcotest.check_raises "predict arity"
    (Invalid_argument "Model_store.predict: feature arity mismatch") (fun () ->
      ignore (Rmt.Model_store.predict store h [| 1 |]))

(* ---------------- Builder ---------------- *)

let test_builder_labels () =
  let open Rmt in
  let b = Builder.create ~name:"b" () in
  let skip = Builder.fresh_label b in
  Builder.emit b (Insn.Ld_ctxt_k (1, 0));
  Builder.jump_if b Insn.Gt ~reg:1 ~imm:5 ~target:skip;
  Builder.emit b (Insn.Ld_imm (0, 0));
  Builder.emit b Insn.Exit;
  Builder.place b skip;
  Builder.emit b (Insn.Ld_imm (0, 1));
  Builder.emit b Insn.Exit;
  let program = Builder.finish b () in
  let control = Control.create () in
  let vm = Result.get_ok (Control.install control program) in
  Alcotest.(check int) "taken" 1
    (Vm.invoke vm ~ctxt:(Ctxt.of_list [ (0, 9) ]) ~now:now0).Interp.result;
  Alcotest.(check int) "fallthrough" 0
    (Vm.invoke vm ~ctxt:(Ctxt.of_list [ (0, 3) ]) ~now:now0).Interp.result

let test_builder_backward_label_rejected () =
  let open Rmt in
  let b = Builder.create ~name:"b" () in
  let back = Builder.fresh_label b in
  Builder.place b back;
  Builder.emit b (Insn.Ld_imm (0, 0));
  Builder.jump b ~target:back;
  Builder.emit b Insn.Exit;
  Alcotest.check_raises "backward" (Invalid_argument "Builder.finish: backward label")
    (fun () -> ignore (Builder.finish b ()))

let suite =
  [ ( "table",
      [ Alcotest.test_case "exact match" `Quick test_table_exact_match;
        Alcotest.test_case "priority and patterns" `Quick test_table_priority_and_patterns;
        Alcotest.test_case "runtime updates" `Quick test_table_runtime_updates;
        Alcotest.test_case "tie break" `Quick test_table_insertion_order_breaks_ties;
        Alcotest.test_case "arity check" `Quick test_table_arity_check;
        QCheck_alcotest.to_alcotest prop_pattern_matches ] );
    ( "pipeline",
      [ Alcotest.test_case "fire order" `Quick test_pipeline_fire_order ] );
    ( "control",
      [ Alcotest.test_case "install and hot-swap model" `Quick
          test_control_install_and_update_model;
        Alcotest.test_case "rejects unverifiable" `Quick test_control_rejects_unverifiable;
        Alcotest.test_case "install asm" `Quick test_control_install_asm;
        Alcotest.test_case "model cost budget" `Quick test_control_model_cost_budget ] );
    ( "privacy",
      [ Alcotest.test_case "budget accounting" `Quick test_privacy_budget_accounting;
        Alcotest.test_case "noise scale" `Quick test_privacy_noise_scale;
        Alcotest.test_case "end to end denial" `Quick test_privacy_end_to_end_denial ] );
    ( "rate_guard",
      [ Alcotest.test_case "rate limit grants" `Quick test_rate_limit_grants;
        Alcotest.test_case "rate limit in vm" `Quick test_rate_limit_in_vm;
        Alcotest.test_case "rate limit int extremes" `Quick test_rate_limit_extremes;
        Alcotest.test_case "guardrail" `Quick test_guardrail;
        Alcotest.test_case "guardrail int extremes" `Quick test_guardrail_extremes ] );
    ( "model_store",
      [ Alcotest.test_case "lifecycle" `Quick test_model_store ] );
    ( "builder",
      [ Alcotest.test_case "labels" `Quick test_builder_labels;
        Alcotest.test_case "backward label rejected" `Quick
          test_builder_backward_label_rejected ] ) ]
