(* Tests for the sharded serving layer (DESIGN.md section 14): SPSC ring
   semantics, digest determinism across shard counts and drain modes,
   per-shard breaker and canary isolation, fault-plan capture into
   pinned workers, the obs stripe guard, and steady-state allocation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Ring ---------------- *)

let test_ring_fifo_wrap_full () =
  let r = Serve.Ring.create ~capacity:6 in
  check_int "capacity rounds up to a power of two" 8 (Serve.Ring.capacity r);
  check_bool "fresh ring is empty" true (Serve.Ring.is_empty r);
  for i = 0 to 7 do
    check_bool "push admits while free" true
      (Serve.Ring.try_push r ~tenant:i ~page:(i * 10) ~stamp:(i * 100))
  done;
  check_bool "full ring refuses" false (Serve.Ring.try_push r ~tenant:99 ~page:0 ~stamp:0);
  check_int "length sees the backlog" 8 (Serve.Ring.length r);
  let tenants = Array.make 8 (-1)
  and pages = Array.make 8 (-1)
  and stamps = Array.make 8 (-1) in
  let n = Serve.Ring.drain_into r ~max:5 tenants pages stamps in
  check_int "drain honors max" 5 n;
  for i = 0 to 4 do
    check_int "tenant fifo" i tenants.(i);
    check_int "page fifo" (i * 10) pages.(i);
    check_int "stamp fifo" (i * 100) stamps.(i)
  done;
  (* Refill past the array edge: cursors are monotonic, slots wrap. *)
  for i = 8 to 12 do
    check_bool "push after partial drain" true
      (Serve.Ring.try_push r ~tenant:i ~page:(i * 10) ~stamp:(i * 100))
  done;
  let n = Serve.Ring.drain_into r ~max:8 tenants pages stamps in
  check_int "drains the remainder" 8 n;
  for i = 0 to 7 do
    check_int "fifo across the wrap" (5 + i) tenants.(i)
  done;
  check_bool "drained ring is empty" true (Serve.Ring.is_empty r)

(* [length]/[is_empty] snapshot tail strictly before head, so a
   concurrent observer always reads a value within [0, capacity]: the
   producer can only grow tail after the snapshot (undercounting is
   fine), and a head read after the tail read can only have advanced
   (which shrinks, never inflates, the difference).  The opposite order
   admits values above capacity.  A third domain hammers [length] while
   producer and consumer run flat out, then checks quiescent exactness. *)
let test_ring_length_bounds_under_concurrency () =
  let capacity = 8 in
  let r = Serve.Ring.create ~capacity in
  let pushes = 2_000 in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let observer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let n = Serve.Ring.length r in
          if n < 0 || n > capacity then Atomic.incr bad;
          if Serve.Ring.is_empty r && n > capacity then Atomic.incr bad
        done)
  in
  let producer =
    Domain.spawn (fun () ->
        let sent = ref 0 in
        while !sent < pushes do
          if Serve.Ring.try_push r ~tenant:!sent ~page:0 ~stamp:0 then incr sent
          else Domain.cpu_relax ()
        done)
  in
  let tenants = Array.make capacity (-1)
  and pages = Array.make capacity (-1)
  and stamps = Array.make capacity (-1) in
  let drained = ref 0 in
  while !drained < pushes do
    let n = Serve.Ring.drain_into r ~max:capacity tenants pages stamps in
    if n = 0 then Domain.cpu_relax () else drained := !drained + n
  done;
  Domain.join producer;
  Atomic.set stop true;
  Domain.join observer;
  check_int "no out-of-bounds length observed" 0 (Atomic.get bad);
  check_int "quiescent length is exact" 0 (Serve.Ring.length r);
  check_bool "quiescent ring is empty" true (Serve.Ring.is_empty r)

(* ---------------- Shard park/post exception safety ---------------- *)

let null_sink =
  { Serve.Shard.run = (fun ~n:_ ~tenants:_ ~pages:_ ~now:_ -> ());
    control = None;
    digest = (fun () -> 0) }

exception Probe_fault

(* A raise out of [should_stop] must leave the shard parkable: the
   parked flag cleared and the park mutex released ([Fun.protect]), so
   the next post/wake/park cycle behaves normally. *)
let test_park_exception_safety () =
  let shard =
    Serve.Shard.create ~index:90 ~producers:1 ~ring_capacity:8 ~max_batch:4 null_sink
  in
  (match Serve.Shard.park shard ~should_stop:(fun () -> raise Probe_fault) with
   | () -> Alcotest.fail "faulting stop probe did not propagate"
   | exception Probe_fault -> ());
  (* The mutex is free and the flag cleared: a full post -> wake ->
     park -> drain cycle completes without deadlock. *)
  let ran = ref false in
  Serve.Shard.post shard (fun () -> ran := true);
  Serve.Shard.park shard ~should_stop:(fun () -> true);
  check_int "posted command runs on the next sweep" 0
    (Serve.Shard.drain_once shard ~now:0);
  check_bool "post survived the faulting park" true !ran;
  Serve.Shard.wake_force shard

(* A posted command that raises propagates out of [drain_once]; the
   shard must stay serviceable: later posts run, events drain, and the
   park path still works. *)
let test_faulting_posted_command () =
  let shard =
    Serve.Shard.create ~index:91 ~producers:1 ~ring_capacity:8 ~max_batch:4 null_sink
  in
  Serve.Shard.post shard (fun () -> raise Probe_fault);
  (match Serve.Shard.drain_once shard ~now:0 with
   | _ -> Alcotest.fail "faulting command did not propagate"
   | exception Probe_fault -> ());
  check_bool "event admitted after the fault" true
    (Serve.Ring.try_push (Serve.Shard.ring shard 0) ~tenant:1 ~page:2 ~stamp:3);
  let ran = ref false in
  Serve.Shard.post shard (fun () -> ran := true);
  check_int "drain serves the event" 1 (Serve.Shard.drain_once shard ~now:0);
  check_bool "later posts still run" true !ran;
  (* Work is queued on neither ring nor pending: park sleeps until a
     wake, proving the flag/mutex state survived the fault. *)
  let parked = ref false in
  let consumer =
    Domain.spawn (fun () ->
        Serve.Shard.park shard ~should_stop:(fun () ->
            parked := true;
            false);
        ())
  in
  while not !parked do
    Domain.cpu_relax ()
  done;
  Serve.Shard.wake_force shard;
  Domain.join consumer

(* ---------------- Shared fixtures ---------------- *)

let tenant_on fleet shard =
  let rec find t =
    if Serve.Serving.shard_of_tenant fleet t = shard then t else find (t + 1)
  in
  find 0

let submit_exn fleet ~tenant ~page =
  match Serve.Serving.submit fleet ~producer:0 ~tenant ~page with
  | `Admitted -> ()
  | `Throttled -> Alcotest.fail "unlimited fleet throttled"
  | `Backpressure -> Alcotest.fail "unexpected backpressure"

let breaker_of dp =
  match
    Rmt.Pipeline.breaker
      (Rmt.Control.pipeline (Serve.Shard.Datapath.control dp))
      ~hook:Serve.Shard.Datapath.hook
  with
  | Some b -> b
  | None -> Alcotest.fail "shard datapath hook is protected"

let fallbacks_of dp =
  Rmt.Pipeline.fallback_served
    (Rmt.Control.pipeline (Serve.Shard.Datapath.control dp))
    ~hook:Serve.Shard.Datapath.hook

(* ---------------- Digest determinism ---------------- *)

let serve_trace () =
  let rng = Kml.Rng.create 0x5e4e in
  Ksim.Workload_mem.multi_tenant ~rng ~tenants:12 ~events_per_tenant:40 ~pages:512 ()

(* Feed the same trace to a fleet of [shards] shards, inline or pinned,
   and report (served, digest). *)
let run_fleet ~shards ~pinned trace =
  let config =
    { Serve.Serving.default_config with shards; ring_capacity = 128; max_batch = 16 }
  in
  let fleet, _dps = Serve.Serving.create_datapath ~config () in
  if pinned then Serve.Serving.start fleet;
  List.iter
    (fun (a : Ksim.Workload_mem.access) ->
      let rec push () =
        match Serve.Serving.submit fleet ~producer:0 ~tenant:a.pid ~page:a.page with
        | `Admitted -> ()
        | `Throttled -> Alcotest.fail "unlimited fleet throttled"
        | `Backpressure ->
          if pinned then Domain.cpu_relax ()
          else ignore (Serve.Serving.drain fleet : int);
          push ()
      in
      push ())
    trace;
  if pinned then Serve.Serving.stop fleet else Serve.Serving.drain_until_idle fleet;
  (Serve.Serving.served fleet, Serve.Serving.digest fleet)

let test_digest_across_widths () =
  let trace = serve_trace () in
  let n = List.length trace in
  let served1, d1 = run_fleet ~shards:1 ~pinned:false trace in
  let served3, d3 = run_fleet ~shards:3 ~pinned:false trace in
  let served4, d4 = run_fleet ~shards:4 ~pinned:true trace in
  check_int "inline/1 serves every event" n served1;
  check_int "inline/3 serves every event" n served3;
  check_int "pinned/4 serves every event" n served4;
  check_bool "digest is nontrivial" true (d1 <> 0);
  check_bool "1 and 3 shards agree" true (d1 = d3);
  check_bool "inline and pinned agree" true (d1 = d4)

(* ---------------- Per-shard breaker isolation ---------------- *)

let test_breaker_trip_is_shard_local () =
  let config = { Serve.Serving.default_config with shards = 2; max_batch = 8 } in
  let fleet, dps = Serve.Serving.create_datapath ~config () in
  let t0 = tenant_on fleet 0 and t1 = tenant_on fleet 1 in
  submit_exn fleet ~tenant:t0 ~page:1;
  submit_exn fleet ~tenant:t1 ~page:1;
  ignore (Serve.Serving.drain fleet : int);
  let d1_before = Serve.Shard.Datapath.digest dps.(1) in
  (* Trip shard 0's breaker through the control-command queue — the same
     route rkdctl and the front-end use — then keep serving both. *)
  Serve.Serving.post_tenant fleet ~tenant:t0 (fun () ->
      Rmt.Breaker.trip (breaker_of dps.(0)) ~now:0);
  for i = 2 to 9 do
    submit_exn fleet ~tenant:t0 ~page:i;
    submit_exn fleet ~tenant:t1 ~page:i
  done;
  Serve.Serving.drain_until_idle fleet;
  check_bool "tripped shard is open" true
    (Rmt.Breaker.state (breaker_of dps.(0)) = Rmt.Breaker.Open);
  check_bool "tripped shard serves the stock fallback" true (fallbacks_of dps.(0) >= 8);
  check_int "peer shard never falls back" 0 (fallbacks_of dps.(1));
  check_bool "peer breaker stays closed" true
    (Rmt.Breaker.state (breaker_of dps.(1)) = Rmt.Breaker.Closed);
  check_bool "peer keeps making real decisions" true
    (Serve.Shard.Datapath.digest dps.(1) <> d1_before);
  check_int "every event was still served" 18 (Serve.Serving.served fleet)

(* ---------------- Per-shard canary transactions ---------------- *)

let test_canary_routes_per_shard () =
  let config = { Serve.Serving.default_config with shards = 2; max_batch = 8 } in
  let fleet, dps = Serve.Serving.create_datapath ~config () in
  let c0 = Serve.Shard.Datapath.control dps.(0)
  and c1 = Serve.Shard.Datapath.control dps.(1) in
  let name = Serve.Shard.Datapath.program_name in
  let status c =
    match Rmt.Control.canary_status c name with
    | Some s -> s
    | None -> Alcotest.fail "serve program is installed"
  in
  check_bool "idle before staging" true (status c0 = `Idle);
  let prog =
    Rkd.Prefetch_rmt.build_collect_program Rkd.Prefetch_rmt.default_params
  in
  (match Rmt.Control.install_canary c0 ~invocations:4 ~max_divergences:4 ~grace:2 prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "canary install: %s" e);
  check_bool "staged on shard 0" true
    (match status c0 with `Canary _ -> true | _ -> false);
  check_bool "peer shard untouched" true (status c1 = `Idle);
  (* Shadow traffic on shard 0 only: identical program text diverges
     nowhere, so it promotes and its grace window closes. *)
  let t0 = tenant_on fleet 0 in
  let rec drive i =
    if status c0 <> `Idle && i < 64 then begin
      submit_exn fleet ~tenant:t0 ~page:i;
      Serve.Serving.drain_until_idle fleet;
      drive (i + 1)
    end
  in
  drive 0;
  check_bool "promoted through its grace window" true (status c0 = `Idle);
  (* A re-staged canary aborts cleanly, still shard-locally. *)
  (match Rmt.Control.install_canary c0 ~invocations:8 ~grace:2 prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "second canary: %s" e);
  check_bool "second canary staged" true
    (match status c0 with `Canary _ -> true | _ -> false);
  check_bool "rollback accepted" true (Rmt.Control.rollback_program c0 name);
  check_bool "rolled back to idle" true (status c0 = `Idle);
  check_bool "peer shard still idle" true (status c1 = `Idle)

(* ---------------- Fault capture into pinned workers ---------------- *)

(* Regression for the serving chaos mode: fault plans are domain-local
   (DLS), so a plan armed on the control domain must be captured by
   [Serving.start] and re-armed inside each pinned shard worker —
   otherwise RKD_FAULTS never reaches the datapaths it is meant to
   shake. *)
let test_fault_plan_reaches_pinned_workers () =
  let before = Rmt.Fault.injected Rmt.Fault.Table_miss in
  Rmt.Fault.with_plan ~seed:11
    [ (Rmt.Fault.Table_miss, 1.0) ]
    (fun () ->
      let config = { Serve.Serving.default_config with shards = 2 } in
      let fleet, _dps = Serve.Serving.create_datapath ~config () in
      Serve.Serving.start fleet;
      for i = 0 to 63 do
        let rec push () =
          match
            Serve.Serving.submit fleet ~producer:0 ~tenant:(i land 7) ~page:i
          with
          | `Admitted -> ()
          | `Throttled -> Alcotest.fail "unlimited fleet throttled"
          | `Backpressure ->
            Domain.cpu_relax ();
            push ()
        in
        push ()
      done;
      Serve.Serving.stop fleet;
      check_int "every event served under faults" 64 (Serve.Serving.served fleet));
  let fired = Rmt.Fault.injected Rmt.Fault.Table_miss - before in
  check_bool "plan armed on the control domain fired inside shard workers" true
    (fired > 0)

(* ---------------- Obs stripe guard ---------------- *)

let test_stripe_guard () =
  let cap = Obs.stripe_capacity in
  check_bool "stripe capacity is positive" true (cap > 0);
  check_int "in-range id maps to itself" 3 (Obs.stripe_of_id 3);
  let big = (cap * 7) + 5 in
  let s = Obs.stripe_of_id big in
  check_bool "overflow id is masked into range" true (s >= 0 && s < cap);
  check_bool "overflow high-water recorded" true (Obs.stripe_overflow_max_id () >= big)

(* ---------------- Steady-state allocation ---------------- *)

(* Same tolerance story as test_batch: Gc.minor_words itself boxes a
   float, so a small measurement-noise allowance; real per-event
   allocation would cost >= 2 words x 8 events x 1000 passes. *)
let test_zero_alloc_steady_state () =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let config =
        { Serve.Serving.default_config with
          shards = 1;
          max_batch = 16;
          ring_capacity = 64 }
      in
      let fleet, _dps = Serve.Serving.create_datapath ~config () in
      Serve.Serving.set_now fleet 1_000;
      let pass () =
        for t = 0 to 7 do
          match
            Serve.Serving.submit fleet ~producer:0 ~tenant:t ~page:(t * 17 land 511)
          with
          | `Admitted -> ()
          | `Throttled | `Backpressure -> Alcotest.fail "steady-state submit refused"
        done;
        ignore (Serve.Serving.drain fleet : int)
      in
      for _ = 1 to 100 do
        pass ()
      done;
      let before = Gc.minor_words () in
      for _ = 1 to 1_000 do
        pass ()
      done;
      let delta = Gc.minor_words () -. before in
      if delta > 256.0 then
        Alcotest.failf "steady-state serve loop allocated %.0f minor words" delta)

let suite =
  [ ( "serve",
      [ Alcotest.test_case "ring fifo, wrap, full" `Quick test_ring_fifo_wrap_full;
        Alcotest.test_case "ring length bounded under concurrency" `Quick
          test_ring_length_bounds_under_concurrency;
        Alcotest.test_case "park survives a faulting stop probe" `Quick
          test_park_exception_safety;
        Alcotest.test_case "shard survives a faulting posted command" `Quick
          test_faulting_posted_command;
        Alcotest.test_case "digest stable across widths and modes" `Quick
          test_digest_across_widths;
        Alcotest.test_case "breaker trip is shard-local" `Quick
          test_breaker_trip_is_shard_local;
        Alcotest.test_case "canary transactions route per shard" `Quick
          test_canary_routes_per_shard;
        Alcotest.test_case "fault plan reaches pinned workers" `Quick
          test_fault_plan_reaches_pinned_workers;
        Alcotest.test_case "obs stripe guard masks overflow ids" `Quick
          test_stripe_guard;
        Alcotest.test_case "steady-state serve loop is allocation-free" `Quick
          test_zero_alloc_steady_state
      ] )
  ]
